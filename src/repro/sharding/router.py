"""Shard router: consistent-hash fan-out over supervised worker processes.

:class:`ShardRouter` is the serving tier's front door.  It spawns one
:mod:`worker <repro.sharding.worker>` process per
:class:`~repro.sharding.ShardSpec`, each running a durable
:class:`~repro.streaming.MultiSeriesEngine` session over its own
exclusively-locked :class:`~repro.durability.DirectoryCheckpointStore`,
and routes by consistent hashing on the series key
(:class:`~repro.sharding.ConsistentHashRing` -- process-independent
``blake2b`` tokens, so the same key always reaches the same shard across
restarts).

**The hot path stays batched end to end.**  ``ingest`` takes the same
columnar forms the engine does, partitions the *columns* of a
``{key: values}`` grid by shard, and sends each worker exactly one
message per batch -- its keys plus its ``(L, k)`` sub-grid -- then fans
the per-shard :class:`~repro.streaming.IngestResult` arrays back into
one combined result with a few strided scatters.  No per-point IPC
anywhere.

**The router is a supervisor, not just a dispatcher.**  Failure handling
is layered by how much actually went wrong:

* *Transient errors* (a worker replying ``OSError`` -- full disk, EINTR,
  an injected ENOSPC) retry in place under a bounded exponential-backoff
  :class:`~repro.faults.RetryPolicy`.  Mutating retries are made safe
  first: the router verifies the worker's durable point count did not
  advance, then has it checkpoint (a fresh WAL generation discards a
  possibly-appended-but-unapplied record) before re-sending -- a blind
  re-send after a failure *between* WAL append and state advance would
  double-apply on the next crash recovery.
* *Deaths* trigger checkpoint-handoff failover: a dead worker (SIGKILL
  included) leaves a store whose ownership lease reads stale by dead
  pid; the replacement takes the lease over, rebuilds from the last
  manifest and replays the surviving WAL prefix bit-identically.  A
  death detected mid-ingest recovers first and then raises
  :class:`~repro.sharding.ShardFailoverError` telling the caller -- via
  WAL arithmetic, not guesswork -- whether the in-flight batch survived
  into the log (don't re-send) or was lost before its append (re-send).
* *Hangs* are distinguished from crashes by a watchdog: a worker that is
  alive but silent past ``request_timeout`` is SIGKILLed by the router
  and failed over like a crash, with the resulting error's ``cause``
  set to ``"hang"``.
* *Crash loops* trip a circuit breaker: ``circuit_threshold``
  consecutive deaths with no intervening successful reply mark the shard
  ``down`` -- no more respawn attempts, its process reaped -- until an
  operator :meth:`~ShardRouter.failover` succeeds and resets the
  breaker.
* *Degraded service* is explicit: ``ingest``/``stats``/``keys`` accept
  ``allow_partial=True`` to serve the surviving shards and report
  exactly which keys/shards were skipped instead of raising
  :class:`~repro.sharding.ShardDownError`.  :meth:`health` reports every
  shard's state (``up | degraded | down``), restart count, last error
  and any series keys its recovery quarantined.

**Shards are elastic.**  :meth:`add_shard` / :meth:`remove_shard`
migrate exactly the keys the ring reassigns (about ``1/n`` of the space)
by drain-and-adopt: the source engine extracts and commits, the target
adopts and commits, both via the engine's
``extract_series``/``adopt_series`` handoff -- the moved series continue
bit-identically on their new shard.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

import numpy as np

from repro.durability.scrub import RECOVERY_POLICIES, decode_manifest_keys
from repro.faults import FaultPlan, RetryPolicy
from repro.sharding.errors import (
    ShardDownError,
    ShardFailoverError,
    ShardingError,
    WorkerCrashError,
)
from repro.sharding.hashring import ConsistentHashRing
from repro.sharding.spec import ClusterSpec, ShardSpec
from repro.sharding.worker import worker_main
from repro.streaming.engine import FleetStats, IngestResult, MultiSeriesEngine

__all__ = [
    "ClusterStats",
    "DegradedResult",
    "FailoverReport",
    "ShardHealth",
    "ShardRouter",
]

#: IngestResult array fields, in the order workers reply them
_RESULT_FIELDS = (
    "index",
    "value",
    "trend",
    "seasonal",
    "residual",
    "anomaly_score",
    "is_anomaly",
    "detection_residual",
    "live",
)

#: worker-reported exception kinds treated as transient (retry in place);
#: everything else either maps to a local exception type or is a bug.
_TRANSIENT_KINDS = frozenset(
    {"OSError", "IOError", "TimeoutError", "InterruptedError", "BlockingIOError"}
)

#: error kinds re-raised locally as the same exception type
_KNOWN_KINDS = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "RuntimeError": RuntimeError,
}

#: the default supervision retry policy (three attempts, 50 ms -> 200 ms)
_DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True, slots=True)
class FailoverReport:
    """Outcome of one shard failover (replacement already serving)."""

    shard_id: str
    recovered_points: int
    duration_seconds: float


@dataclass(frozen=True, slots=True)
class ShardHealth:
    """One shard's supervision state, as :meth:`ShardRouter.health` reports it.

    ``state`` is ``"up"`` (serving, no recent trouble), ``"degraded"``
    (serving, but with unresolved trouble: consecutive failures below the
    breaker threshold, or recovery quarantined some of its series), or
    ``"down"`` (circuit breaker open; requests raise or skip it until an
    operator :meth:`~ShardRouter.failover` succeeds).  ``restarts``
    counts successful failovers over the router's lifetime;
    ``consecutive_failures`` is the breaker's current count (reset by any
    successful reply).  ``quarantined_keys`` names series the shard's
    last recovery had to quarantine (empty when recovery was clean).
    """

    shard_id: str
    state: str
    pid: int | None
    restarts: int
    consecutive_failures: int
    points_confirmed: int
    last_error: str | None = None
    last_failure_cause: str | None = None
    quarantined_keys: tuple = ()


@dataclass(frozen=True, slots=True)
class ClusterStats:
    """Fleet statistics aggregated across every shard.

    ``down_shards`` names shards skipped by an ``allow_partial=True``
    aggregation (their series are *not* in the totals); it is always
    empty for strict calls, which raise instead.
    """

    series_total: int
    series_live: int
    series_warming: int
    points_total: int
    anomalies_total: int
    shards: dict = field(default_factory=dict)
    down_shards: tuple = ()


@dataclass(frozen=True, slots=True)
class DegradedResult:
    """An ``allow_partial=True`` ingest outcome: the result plus the gaps.

    ``result`` holds the combined arrays for every key that was actually
    served.  ``skipped_keys`` names the keys whose results are **not**
    in ``result`` -- keys routed to a down shard, or to a shard that
    died mid-batch (its reply was lost with it even when its state
    advanced).  ``down_shards`` lists shards whose breaker is open after
    this call.  ``failovers`` maps each shard that died mid-batch and
    was brought back to whether its slice survived into the WAL
    (``True``: state advanced, do not re-send those keys; ``False``:
    re-send them).
    """

    result: IngestResult
    skipped_keys: tuple = ()
    down_shards: tuple = ()
    failovers: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when nothing was skipped -- the result covers every key."""
        return not self.skipped_keys and not self.down_shards


class _WorkerDied(Exception):
    """Internal: the peer process died mid-conversation.

    ``cause`` is ``"crash"`` (found dead / pipe broke) or ``"hang"``
    (alive but silent past the deadline; the watchdog SIGKILLed it).
    """

    def __init__(self, cause: str = "crash"):
        super().__init__(cause)
        self.cause = cause


class _TransientShardError(Exception):
    """Internal: a worker replied with a transient (retryable) error."""

    def __init__(self, shard_id: str, kind: str, message: str):
        super().__init__(f"shard {shard_id!r}: {kind}: {message}")
        self.shard_id = shard_id
        self.kind = kind
        self.message = message


class _ShardHealthState:
    """Mutable per-shard supervision bookkeeping (router-side only)."""

    __slots__ = (
        "restarts",
        "consecutive_failures",
        "last_error",
        "last_failure_cause",
        "down",
        "quarantined_keys",
    )

    def __init__(self) -> None:
        self.restarts = 0
        #: deaths (crash/hang/send-failure) since the last successful
        #: reply; this is the circuit breaker's counter.
        self.consecutive_failures = 0
        self.last_error: str | None = None
        self.last_failure_cause: str | None = None
        self.down = False
        self.quarantined_keys: tuple = ()


class _ShardWorker:
    """Router-side handle of one worker process."""

    __slots__ = ("spec", "process", "conn", "points_confirmed", "ready_info")

    def __init__(
        self, spec: ShardSpec, process: Any, conn: Any, points: int, info: dict
    ):
        self.spec = spec
        self.process = process
        self.conn = conn
        #: observations this worker has durably applied (WAL-appended and
        #: advanced), from its ready report plus confirmed ingest replies.
        #: The failover arithmetic compares a replacement's recovered
        #: count against this to decide whether an in-flight batch
        #: survived into the WAL.
        self.points_confirmed = points
        self.ready_info = info


class ShardRouter:
    """Route a keyed fleet across supervised durable worker processes.

    Parameters
    ----------
    cluster:
        The :class:`~repro.sharding.ClusterSpec` to serve.  Worker
        processes start immediately (recovering any existing store
        state); the router is ready when the constructor returns.
    wal_sync:
        Forwarded to every worker's store (``fsync`` per WAL append).
    auto_recover:
        ``True`` (default): a worker death detected mid-request triggers
        failover before the error surfaces, and the raised
        :class:`~repro.sharding.ShardFailoverError` says whether to
        re-send.  ``False``: the death raises
        :class:`~repro.sharding.WorkerCrashError` and the shard stays
        down until :meth:`failover` is called; the hang watchdog is also
        off (a silent worker raises instead of being killed).
    checkpoint_interval:
        Per-worker auto-checkpoint cadence in WAL records (``None``:
        checkpoint only on :meth:`checkpoint`/:meth:`close` -- between
        those, durability rides on the WAL, which is the fast and still
        crash-safe default).
    request_timeout / spawn_timeout:
        Seconds to wait for a reply / for a worker to report ready
        (recovery of a large store happens inside the spawn window).
        ``request_timeout`` is also the hang watchdog's deadline.
    stale_after:
        Store-lease staleness horizon, forwarded to workers.
    retry:
        The :class:`~repro.faults.RetryPolicy` for transient worker
        errors (default: three attempts, exponential backoff).  ``None``
        disables retries -- transient errors surface immediately as
        :class:`~repro.sharding.ShardingError`.
    circuit_threshold:
        Consecutive deaths (with no successful reply in between) after
        which a shard's breaker opens and it is marked ``down`` instead
        of respawned again.  Must be >= 1.
    recovery:
        Corruption policy forwarded to every worker's engine ``open``
        (``strict | truncate | quarantine``).  The router defaults to
        ``"quarantine"`` -- a serving tier should come up degraded and
        *say so* (see :meth:`health`) rather than refuse to start; the
        engine API itself defaults to ``"strict"``.
    close_timeout:
        Grace seconds :meth:`close` gives each worker to checkpoint and
        exit before escalating to SIGKILL.
    fault_plans:
        Tests only: ``{shard_id: FaultPlan | dict | [FaultInjector]}``
        arms that worker with a deterministic
        :class:`~repro.faults.FaultPlan`.  Consumed at spawn; after a
        failover the replacement is re-armed with only the plan's
        ``persist=True`` injectors (the crash-loop shape), so one-shot
        faults do not repeat.
    fault_injection:
        Legacy test knob: ``{shard_id: {"kill_point": ..., "kill_after":
        n}}`` arms a single ``SIGKILL`` (equivalent to a one-injector
        plan).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        wal_sync: bool = False,
        auto_recover: bool = True,
        checkpoint_interval: int | None = None,
        request_timeout: float = 300.0,
        spawn_timeout: float = 600.0,
        stale_after: float | None = None,
        retry: RetryPolicy | None = _DEFAULT_RETRY,
        circuit_threshold: int = 3,
        recovery: str = "quarantine",
        close_timeout: float = 30.0,
        fault_plans: dict | None = None,
        fault_injection: dict | None = None,
    ):
        if not isinstance(cluster, ClusterSpec):
            raise TypeError(
                f"cluster must be a ClusterSpec, got {type(cluster).__name__}"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
            )
        if int(circuit_threshold) < 1:
            raise ValueError(
                f"circuit_threshold must be >= 1, got {circuit_threshold}"
            )
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, got {recovery!r}"
            )
        self.cluster = cluster
        self.auto_recover = bool(auto_recover)
        self.request_timeout = float(request_timeout)
        self.spawn_timeout = float(spawn_timeout)
        self._wal_sync = bool(wal_sync)
        self._checkpoint_interval = checkpoint_interval
        self._stale_after = stale_after
        self._retry = retry
        self._circuit_threshold = int(circuit_threshold)
        self._recovery = str(recovery)
        self._close_timeout = float(close_timeout)
        #: plans waiting to be shipped at the next spawn of their shard
        self._fault_plans: dict[str, Any] = dict(fault_plans or {})
        #: the plan currently armed in each live worker (for survivor
        #: re-arming on failover)
        self._armed_plans: dict[str, FaultPlan] = {}
        self._fault_injection = dict(fault_injection or {})
        self._spec_dict = cluster.engine.to_dict()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: spawn works too
            self._ctx = multiprocessing.get_context()
        self._ring = ConsistentHashRing(
            (shard.shard_id for shard in cluster.shards),
            virtual_nodes=cluster.virtual_nodes,
        )
        self._workers: dict[str, _ShardWorker] = {}
        self._health: dict[str, _ShardHealthState] = {}
        self._closed = False
        try:
            for shard in cluster.shards:
                self._workers[shard.shard_id] = self._spawn(shard)
        except BaseException:
            self.close(checkpoint=False)
            raise

    # ------------------------------------------------------- worker lifecycle

    def _worker_options(self, shard_id: str) -> dict:
        options: dict = {"wal_sync": self._wal_sync, "recovery": self._recovery}
        if self._checkpoint_interval is not None:
            options["checkpoint_interval"] = self._checkpoint_interval
        if self._stale_after is not None:
            options["stale_after"] = self._stale_after
        pending = self._fault_plans.pop(shard_id, None)
        if pending is not None:
            plan = FaultPlan.coerce(pending)
            if plan:
                options["fault_plan"] = plan.to_dict()
                self._armed_plans[shard_id] = plan
            else:
                self._armed_plans.pop(shard_id, None)
        options.update(self._fault_injection.pop(shard_id, {}))
        return options

    def _spawn(self, spec: ShardSpec) -> _ShardWorker:
        """Start (or restart) the worker serving ``spec`` and await ready."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                spec.shard_id,
                spec.store_path,
                self._spec_dict,
                self._worker_options(spec.shard_id),
            ),
            name=f"repro-shard-{spec.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.spawn_timeout
        try:
            while not parent_conn.poll(0.05):
                if not process.is_alive():
                    raise WorkerCrashError(
                        spec.shard_id,
                        "worker process died before reporting ready (store "
                        "locked by a live process, or recovery failed; check "
                        "its stderr)",
                    )
                if time.monotonic() > deadline:
                    process.kill()
                    process.join(timeout=5.0)
                    raise WorkerCrashError(
                        spec.shard_id,
                        f"worker did not report ready within "
                        f"{self.spawn_timeout}s",
                    )
            status, info = parent_conn.recv()
            if status != "ready":
                # A fatal report means the worker is about to re-raise and
                # exit; reap it, escalating if it lingers.
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
                    if process.is_alive():
                        process.kill()
                        process.join(timeout=5.0)
                raise WorkerCrashError(
                    spec.shard_id, f"worker failed to start: {info}"
                )
        except BaseException:
            # Never leak the parent pipe end of a failed spawn.
            parent_conn.close()
            raise
        worker = _ShardWorker(
            spec, process, parent_conn, int(info["points_total"]), dict(info)
        )
        health = self._health.setdefault(spec.shard_id, _ShardHealthState())
        recovery = info.get("recovery")
        if recovery:
            decoded = decode_manifest_keys(recovery.get("affected_keys") or [])
            health.quarantined_keys = tuple(decoded or ())
        return worker

    def _recv(self, worker: _ShardWorker) -> tuple[str, Any]:
        """Await one reply, raising :class:`_WorkerDied` on death or hang.

        The hang watchdog lives here: a worker still alive but silent
        past ``request_timeout`` gets a router-side SIGKILL and is then
        treated exactly like a crash (stale lease, failover handoff) --
        except the eventual error says ``cause="hang"``.  With
        ``auto_recover`` off the watchdog is off too, and a hang raises
        :class:`WorkerCrashError` leaving the process alone.
        """
        shard_id = worker.spec.shard_id
        deadline = time.monotonic() + self.request_timeout
        try:
            while not worker.conn.poll(0.05):
                if not worker.process.is_alive():
                    raise _WorkerDied("crash")
                if time.monotonic() > deadline:
                    if not self.auto_recover:
                        raise WorkerCrashError(
                            shard_id,
                            f"no reply within {self.request_timeout}s "
                            "(worker alive but stuck)",
                        )
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
                    raise _WorkerDied("hang")
            reply = worker.conn.recv()
        except (EOFError, OSError):
            raise _WorkerDied("crash") from None
        health = self._health.get(shard_id)
        if health is not None:
            # Any successful reply closes the breaker's counting window.
            health.consecutive_failures = 0
        return reply

    def _request(self, worker: _ShardWorker, command: str, payload: Any) -> Any:
        """One synchronous command round-trip, errors re-raised locally."""
        try:
            worker.conn.send((command, payload))
        except (BrokenPipeError, OSError):
            raise _WorkerDied("crash") from None
        return self._request_reply(worker)

    def _request_reply(self, worker: _ShardWorker) -> Any:
        """Receive one already-sent request's reply (shared error mapping).

        Transient kinds raise :class:`_TransientShardError` for the
        retry layer; known value/usage kinds re-raise as the same local
        type; anything else is a :class:`ShardingError` carrying the
        worker's traceback.
        """
        status, reply = self._recv(worker)
        if status == "error":
            kind, message = str(reply[0]), str(reply[1])
            trace = reply[2] if len(reply) > 2 else None
            if kind in _TRANSIENT_KINDS:
                raise _TransientShardError(worker.spec.shard_id, kind, message)
            exception_type = _KNOWN_KINDS.get(kind)
            if exception_type is not None:
                raise exception_type(
                    f"shard {worker.spec.shard_id!r}: {message}"
                )
            detail = f"shard {worker.spec.shard_id!r}: {kind}: {message}"
            if trace:
                detail += f"\n--- worker traceback ---\n{trace}"
            raise ShardingError(detail)
        return reply

    def _alive(self, shard_id: str, allow_down: bool = False) -> _ShardWorker:
        if self._closed:
            raise ShardingError("router is closed")
        worker = self._workers.get(shard_id)
        if worker is None:
            raise ShardingError(f"no shard {shard_id!r} in this cluster")
        health = self._health.get(shard_id)
        if not allow_down and health is not None and health.down:
            raise ShardDownError(
                shard_id, health.last_error or "circuit breaker open"
            )
        return worker

    def failover(self, shard_id: str) -> FailoverReport:
        """Replace a dead (or down) worker: reopen its store and serve on.

        The replacement takes over the dead process' stale store lease,
        rebuilds from the last committed manifest and replays the
        surviving WAL prefix -- state continues bit-identically with the
        log.  This is also the operator's lever against an open circuit
        breaker: a successful call resets the breaker, clears any armed
        fault plan, and marks the shard up again.  Raises
        :class:`~repro.sharding.ShardingError` if the worker is still
        alive (kill it first; live workers are drained with
        :meth:`remove_shard`, not failed over).
        """
        worker = self._alive(shard_id, allow_down=True)
        health = self._health[shard_id]
        if not health.down:
            # A killed worker's pipe hits EOF an instant before the
            # process is reapable (fds close before the exit
            # notification), so a caller reacting to the EOF can land
            # here while ``is_alive()`` still says yes; a short join
            # closes that window without masking a worker that is
            # genuinely serving.
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                raise ShardingError(
                    f"shard {shard_id!r}: worker pid {worker.process.pid} is "
                    "alive; failover replaces dead workers only (use "
                    "remove_shard() to drain a live one)"
                )
        start = time.perf_counter()
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join()
        # An operator restart starts clean: no re-armed faults, and a
        # success closes the breaker.
        self._fault_plans.pop(shard_id, None)
        self._armed_plans.pop(shard_id, None)
        replacement = self._spawn(worker.spec)
        self._workers[shard_id] = replacement
        health.down = False
        health.consecutive_failures = 0
        health.restarts += 1
        return FailoverReport(
            shard_id=shard_id,
            recovered_points=replacement.points_confirmed,
            duration_seconds=time.perf_counter() - start,
        )

    def _auto_failover(
        self, shard_id: str, cause: str, detail: str
    ) -> _ShardWorker | None:
        """Supervision failover: respawn unless the breaker trips.

        Returns the replacement worker, or ``None`` when the shard was
        marked down instead (breaker threshold reached, or the respawn
        itself failed).  Re-arms only the ``persist=True`` injectors of
        any armed fault plan, so deterministic one-shot faults do not
        kill the replacement too.
        """
        health = self._health[shard_id]
        health.consecutive_failures += 1
        health.last_error = detail
        health.last_failure_cause = cause
        if health.consecutive_failures >= self._circuit_threshold:
            self._mark_down(
                shard_id,
                f"{health.consecutive_failures} consecutive failures "
                f"(last: {detail})",
            )
            return None
        armed = self._armed_plans.get(shard_id)
        if armed is not None:
            survivors = armed.survivors()
            if survivors:
                self._fault_plans[shard_id] = survivors
            else:
                self._armed_plans.pop(shard_id, None)
        worker = self._workers[shard_id]
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join()
        try:
            replacement = self._spawn(worker.spec)
        except ShardingError as error:
            self._mark_down(shard_id, f"failover respawn failed: {error}")
            return None
        self._workers[shard_id] = replacement
        health.restarts += 1
        return replacement

    def _mark_down(self, shard_id: str, detail: str) -> None:
        """Open the circuit breaker: reap the worker, stop respawning."""
        health = self._health[shard_id]
        health.down = True
        health.last_error = detail
        worker = self._workers[shard_id]
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        else:
            process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def health(self) -> dict[str, ShardHealth]:
        """Every shard's supervision state, router-side (no worker IPC)."""
        report: dict[str, ShardHealth] = {}
        for shard_id in sorted(self._workers):
            worker = self._workers[shard_id]
            health = self._health.get(shard_id)
            if health is None:
                health = _ShardHealthState()
            if health.down:
                state = "down"
            elif health.consecutive_failures or health.quarantined_keys:
                state = "degraded"
            else:
                state = "up"
            report[shard_id] = ShardHealth(
                shard_id=shard_id,
                state=state,
                pid=None if health.down else worker.process.pid,
                restarts=health.restarts,
                consecutive_failures=health.consecutive_failures,
                points_confirmed=worker.points_confirmed,
                last_error=health.last_error,
                last_failure_cause=health.last_failure_cause,
                quarantined_keys=health.quarantined_keys,
            )
        return report

    # ------------------------------------------------------------- retry layer

    def _retry_readonly(
        self, worker: _ShardWorker, message: tuple, first: _TransientShardError
    ) -> Any:
        """Re-send an idempotent command under the retry policy."""
        shard_id = worker.spec.shard_id
        if self._retry is None:
            raise ShardingError(
                f"shard {shard_id!r}: {first.kind}: {first.message} "
                "(retry disabled)"
            ) from None
        last = first
        for pause in self._retry.delays():
            time.sleep(pause)
            try:
                return self._request(worker, message[0], message[1])
            except _TransientShardError as error:
                last = error
        raise ShardingError(
            f"shard {shard_id!r}: transient {last.kind} persisted through "
            f"{self._retry.attempts} attempts: {last.message}"
        ) from None

    def _retry_mutating(
        self, worker: _ShardWorker, message: tuple, first: _TransientShardError
    ) -> Any:
        """Re-send a *mutating* command (ingest/process) safely.

        A transient failure can land *between* the worker's WAL append
        and its state advance, leaving the record in the log with the
        state (and confirmed count) unchanged -- a blind re-send would
        then apply the slice twice on the next crash recovery.  So each
        retry first verifies the worker's durable count did not move
        (if it did, something half-applied: raise rather than guess),
        then has the worker checkpoint -- a fresh WAL generation
        discards the ambiguous tail -- and only then re-sends.
        """
        shard_id = worker.spec.shard_id
        if self._retry is None:
            raise ShardingError(
                f"shard {shard_id!r}: {first.kind}: {first.message} "
                "(retry disabled)"
            ) from None
        last = first
        delays = self._retry.delays()
        while True:
            pause = next(delays, None)
            if pause is None:
                raise ShardingError(
                    f"shard {shard_id!r}: transient {last.kind} persisted "
                    f"through {self._retry.attempts} attempts: {last.message}"
                ) from None
            time.sleep(pause)
            try:
                points = int(self._request(worker, "points_total", None))
                if points != worker.points_confirmed:
                    worker.points_confirmed = points
                    raise ShardingError(
                        f"shard {shard_id!r}: durable point count moved "
                        f"during a failed request ({last.kind}: "
                        f"{last.message}); a partial apply happened, not "
                        "re-sending"
                    )
                self._request(worker, "checkpoint", None)
                return self._request(worker, message[0], message[1])
            except _TransientShardError as error:
                last = error

    def _request_supervised(
        self, shard_id: str, command: str, payload: Any = None
    ) -> Any:
        """Idempotent command with transient retry and one failover retry.

        Used by the fleet-wide reads (``stats``/``keys``) and
        ``checkpoint``: a worker death during one of these is recovered
        in place (failover, then one re-send to the replacement) instead
        of surfacing an internal exception.
        """
        retried_death = False
        while True:
            worker = self._alive(shard_id)
            try:
                try:
                    return self._request(worker, command, payload)
                except _TransientShardError as error:
                    return self._retry_readonly(
                        worker, (command, payload), error
                    )
            except _WorkerDied as died:
                if not self.auto_recover:
                    raise WorkerCrashError(
                        shard_id,
                        f"worker died during {command!r} and auto_recover "
                        "is off; call failover() to bring the shard back",
                    ) from None
                if retried_death:
                    raise WorkerCrashError(
                        shard_id,
                        f"worker died during {command!r} twice in a row "
                        "(the replacement died too)",
                    ) from None
                detail = (
                    "worker hung past its deadline (watchdog-killed) "
                    f"during {command!r}"
                    if died.cause == "hang"
                    else f"worker died during {command!r}"
                )
                if self._auto_failover(shard_id, died.cause, detail) is None:
                    health = self._health[shard_id]
                    raise ShardDownError(
                        shard_id, health.last_error or detail
                    ) from None
                retried_death = True

    # ---------------------------------------------------------------- routing

    def shard_of(self, key: Hashable) -> str:
        """The shard id currently serving ``key``."""
        return self._ring.shard_for(key)

    @property
    def shard_ids(self) -> list[str]:
        """Shards in the cluster, sorted."""
        return sorted(self._workers)

    def _handle_casualties(
        self, casualties: dict, allow_partial: bool
    ) -> tuple[dict, list, list]:
        """Fail over every worker that died mid-request.

        ``casualties`` maps each dead shard to ``(points_before,
        rows_in_flight, cause, sub_keys)``.  Each is brought back
        *first* (or marked down by its breaker); the WAL arithmetic then
        says whether its slice survived: the recovered count equals
        either ``points_before`` (the slice missed the WAL -- lost,
        re-send) or ``points_before + rows_in_flight`` (the WAL append
        preceded the death and replay applied it -- don't re-send).  A
        slice's WAL record is single and CRC-framed, so there is no
        partial case.

        Strict mode raises the first casualty's error
        (:class:`ShardFailoverError` or :class:`ShardDownError`) after
        *all* casualties are handled; ``allow_partial`` returns
        ``(failovers, skipped_keys, down_shards)`` for the degraded
        result instead.
        """
        if not self.auto_recover:
            shard_id = next(iter(casualties))
            raise WorkerCrashError(
                shard_id,
                "worker died mid-ingest and auto_recover is off; call "
                "failover() to bring the shard back",
            )
        failovers: dict[str, bool] = {}
        skipped: list = []
        down: list[str] = []
        first_error: ShardingError | None = None
        for shard_id, (before, rows, cause, sub_keys) in casualties.items():
            detail = (
                "worker hung past its deadline (watchdog-killed)"
                if cause == "hang"
                else "worker died mid-request"
            )
            replacement = self._auto_failover(shard_id, cause, detail)
            skipped.extend(sub_keys)
            error: ShardingError
            if replacement is None:
                down.append(shard_id)
                error = ShardDownError(
                    shard_id,
                    self._health[shard_id].last_error or detail,
                    tuple(sub_keys),
                )
            else:
                survived = replacement.points_confirmed >= before + rows
                failovers[shard_id] = survived
                error = ShardFailoverError(
                    shard_id,
                    survived,
                    replacement.points_confirmed,
                    cause=cause,
                )
            if first_error is None:
                first_error = error
        if not allow_partial:
            assert first_error is not None  # casualties is never empty
            raise first_error
        return failovers, skipped, down

    def _partition_down(
        self, parts: dict, keys: list, allow_partial: bool
    ) -> tuple[list, list]:
        """Split a routing partition's down shards out before any send.

        Strict mode raises :class:`ShardDownError` (naming this
        request's keys on the down shard) before any slice ships, so a
        strict failure applies nothing.  Returns ``(down_shards,
        skipped_keys)``.
        """
        down: list[str] = []
        skipped: list = []
        for shard_id in sorted(parts):
            health = self._health.get(shard_id)
            if health is None or not health.down:
                continue
            sub_keys = [keys[position] for position in parts[shard_id]]
            if not allow_partial:
                raise ShardDownError(
                    shard_id,
                    health.last_error or "circuit breaker open",
                    tuple(sub_keys),
                )
            down.append(shard_id)
            skipped.extend(sub_keys)
        return down, skipped

    def ingest(
        self,
        batch: "dict | tuple | Sequence",
        *,
        allow_partial: bool = False,
    ) -> IngestResult | DegradedResult:
        """Ingest one batch across the cluster; columnar in, columnar out.

        Accepts the engine's batched input forms -- a columnar ``{key:
        values}`` grid (the fast path), parallel ``(keys, values)``
        arrays, or an iterable of ``(key, value)`` rows -- partitions by
        shard, sends **one message per shard**, and returns one combined
        :class:`~repro.streaming.IngestResult` in the equivalent input
        order.  Per-shard application is not transactional across the
        cluster (a validation error on one shard leaves other shards'
        slices applied, mirroring the engine's own non-transactional
        batch contract); the raised error names the offending shard.

        Transient worker errors (full disk and friends) are retried in
        place under the router's :class:`~repro.faults.RetryPolicy`,
        with a checkpoint between attempts so a retry can never
        double-apply.  If a worker dies mid-batch, see
        :class:`ShardFailoverError`; if a shard's circuit breaker is
        open, strict mode raises :class:`ShardDownError` *before*
        sending anything, while ``allow_partial=True`` serves the
        surviving shards and returns a :class:`DegradedResult` naming
        every skipped key.
        """
        if isinstance(batch, dict):
            round_keys, grid = MultiSeriesEngine._grid_from_dict(batch)
            return self._ingest_grid(round_keys, grid, allow_partial)
        if (
            isinstance(batch, tuple)
            and len(batch) == 2
            and isinstance(batch[1], np.ndarray)
        ):
            keys, values = batch
            values = np.asarray(values, dtype=float)
            keys = list(keys)
            if values.ndim != 1 or len(keys) != values.size:
                raise ValueError(
                    "parallel-array ingest expects (keys, values) of equal "
                    "length with a 1-D value array"
                )
        else:
            rows = list(batch)
            keys = [row[0] for row in rows]
            values = np.array([row[1] for row in rows], dtype=float)
        return self._ingest_rows(keys, values, allow_partial)

    def ingest_grid(
        self,
        round_keys: list,
        grid: "np.ndarray | Sequence",
        *,
        allow_partial: bool = False,
    ) -> IngestResult | DegradedResult:
        """Ingest a round-major ``(rounds, n_keys)`` grid across the cluster.

        The already-columnar twin of :meth:`ingest`'s dict form -- the
        serving layer's wire format decodes straight into ``(keys,
        grid)``, and this entry point forwards it without rebuilding a
        dict.  Column ``j`` holds ``rounds`` consecutive observations of
        ``round_keys[j]``; the grid is partitioned by column onto shards
        (one message per shard) and the combined
        :class:`~repro.streaming.IngestResult` comes back in round-major
        order.  Error/partial semantics are exactly :meth:`ingest`'s.
        """
        grid = np.asarray(grid, dtype=float)
        if grid.ndim == 1:
            grid = grid.reshape(1, -1)
        keys = list(round_keys)
        if grid.ndim != 2 or grid.shape[1] != len(keys):
            raise ValueError(
                "ingest_grid expects a round-major (rounds, n_keys) grid; "
                f"got shape {grid.shape} for {len(keys)} keys"
            )
        if len(set(keys)) != len(keys):
            raise ValueError("ingest_grid keys must be unique")
        return self._ingest_grid(keys, grid, allow_partial)

    def _ingest_grid(
        self, round_keys: list, grid: np.ndarray, allow_partial: bool = False
    ) -> IngestResult | DegradedResult:
        """Fan a round-major ``(L, n)`` grid out by column, fan arrays in."""
        n_rounds, n = grid.shape
        result = IngestResult(round_keys, n_rounds)
        if n_rounds * n == 0:
            return (
                DegradedResult(result=result) if allow_partial else result
            )
        parts = self._ring.assignments(round_keys)
        down_shards, skipped = self._partition_down(
            parts, round_keys, allow_partial
        )
        sent: list[tuple[_ShardWorker, np.ndarray, int, tuple, list]] = []
        casualties: dict[str, tuple[int, int, str, list]] = {}
        for shard_id, positions in parts.items():
            if shard_id in down_shards:
                continue
            worker = self._alive(shard_id, allow_down=True)
            columns = np.asarray(positions, dtype=np.intp)
            sub_keys = [round_keys[position] for position in positions]
            sub_grid = np.ascontiguousarray(grid[:, columns])
            rows_in_flight = n_rounds * columns.size
            message = ("ingest", (sub_keys, sub_grid))
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                casualties[shard_id] = (
                    worker.points_confirmed,
                    rows_in_flight,
                    "crash",
                    sub_keys,
                )
                continue
            sent.append((worker, columns, rows_in_flight, message, sub_keys))
        shard_error: BaseException | None = None
        for worker, columns, rows_in_flight, message, sub_keys in sent:
            shard_id = worker.spec.shard_id
            try:
                try:
                    arrays = self._request_reply(worker)
                except _TransientShardError as error:
                    arrays = self._retry_mutating(worker, message, error)
            except _WorkerDied as died:
                casualties[shard_id] = (
                    worker.points_confirmed,
                    rows_in_flight,
                    died.cause,
                    sub_keys,
                )
                continue
            except (ValueError, TypeError, KeyError, RuntimeError) as error:
                # The shard applied a prefix of its slice and rejected a
                # value; other shards' replies still need draining.  The
                # worker's confirmed count is re-synced lazily below.
                shard_error = shard_error or error
                self._resync_points(worker)
                continue
            except ShardingError as error:
                # Retry exhaustion / unexpected worker error: the worker
                # is alive, so drain the rest and re-raise.
                shard_error = shard_error or error
                self._resync_points(worker)
                continue
            worker.points_confirmed += rows_in_flight
            width = columns.size
            for name, shard_array in zip(_RESULT_FIELDS, arrays):
                getattr(result, name).reshape(n_rounds, n)[:, columns] = (
                    shard_array.reshape(n_rounds, width)
                )
        failovers: dict[str, bool] = {}
        if casualties:
            failovers, lost, tripped = self._handle_casualties(
                casualties, allow_partial
            )
            skipped.extend(lost)
            down_shards.extend(tripped)
        if shard_error is not None:
            raise shard_error
        if allow_partial:
            return DegradedResult(
                result=result,
                skipped_keys=tuple(skipped),
                down_shards=tuple(down_shards),
                failovers=failovers,
            )
        return result

    def _ingest_rows(
        self, keys: list, values: np.ndarray, allow_partial: bool = False
    ) -> IngestResult | DegradedResult:
        """Fan a flat ``(keys, values)`` batch out by row position."""
        result = IngestResult(keys, 1 if keys else 0)
        if not keys:
            return (
                DegradedResult(result=result) if allow_partial else result
            )
        parts = self._ring.assignments(keys)
        down_shards, skipped = self._partition_down(parts, keys, allow_partial)
        sent: list[tuple[_ShardWorker, np.ndarray, tuple, list]] = []
        casualties: dict[str, tuple[int, int, str, list]] = {}
        for shard_id, positions in parts.items():
            if shard_id in down_shards:
                continue
            worker = self._alive(shard_id, allow_down=True)
            take = np.asarray(positions, dtype=np.intp)
            sub_keys = [keys[position] for position in positions]
            message = ("ingest_rows", (sub_keys, values[take]))
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                casualties[shard_id] = (
                    worker.points_confirmed,
                    take.size,
                    "crash",
                    sub_keys,
                )
                continue
            sent.append((worker, take, message, sub_keys))
        shard_error: BaseException | None = None
        for worker, take, message, sub_keys in sent:
            shard_id = worker.spec.shard_id
            try:
                try:
                    arrays = self._request_reply(worker)
                except _TransientShardError as error:
                    arrays = self._retry_mutating(worker, message, error)
            except _WorkerDied as died:
                casualties[shard_id] = (
                    worker.points_confirmed,
                    take.size,
                    died.cause,
                    sub_keys,
                )
                continue
            except (ValueError, TypeError, KeyError, RuntimeError) as error:
                shard_error = shard_error or error
                self._resync_points(worker)
                continue
            except ShardingError as error:
                shard_error = shard_error or error
                self._resync_points(worker)
                continue
            worker.points_confirmed += take.size
            for name, shard_array in zip(_RESULT_FIELDS, arrays):
                getattr(result, name)[take] = shard_array
        failovers: dict[str, bool] = {}
        if casualties:
            failovers, lost, tripped = self._handle_casualties(
                casualties, allow_partial
            )
            skipped.extend(lost)
            down_shards.extend(tripped)
        if shard_error is not None:
            raise shard_error
        if allow_partial:
            return DegradedResult(
                result=result,
                skipped_keys=tuple(skipped),
                down_shards=tuple(down_shards),
                failovers=failovers,
            )
        return result

    def _resync_points(self, worker: _ShardWorker) -> None:
        """Refresh a worker's confirmed-point count after a partial apply."""
        try:
            worker.points_confirmed = int(
                self._request(worker, "points_total", None)
            )
        except (_WorkerDied, _TransientShardError):
            # Leave the stale count: the failover that follows replaces
            # this worker handle, and the replacement's count comes from
            # its fresh ready report -- a stale value here never persists.
            pass

    # ------------------------------------------------------------ single-key

    def process(self, key: Hashable, value: float) -> Any:
        """Ingest one observation for one series on its shard."""
        shard_id = self.shard_of(key)
        health = self._health.get(shard_id)
        if health is not None and health.down:
            raise ShardDownError(
                shard_id, health.last_error or "circuit breaker open", (key,)
            )
        worker = self._alive(shard_id)
        message = ("process", (key, value))
        try:
            try:
                record = self._request(worker, message[0], message[1])
            except _TransientShardError as error:
                record = self._retry_mutating(worker, message, error)
        except _WorkerDied as died:
            self._handle_casualties(
                {shard_id: (worker.points_confirmed, 1, died.cause, [key])},
                allow_partial=False,
            )
            raise AssertionError("unreachable: strict casualties raise")
        worker.points_confirmed += 1
        return record

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` values ahead for one live series."""
        shard_id = self.shard_of(key)
        health = self._health.get(shard_id)
        if health is not None and health.down:
            raise ShardDownError(
                shard_id, health.last_error or "circuit breaker open", (key,)
            )
        worker = self._alive(shard_id)
        message = ("forecast", (key, int(horizon)))
        try:
            try:
                return self._request(worker, message[0], message[1])
            except _TransientShardError as error:
                return self._retry_readonly(worker, message, error)
        except _WorkerDied as died:
            self._handle_casualties(
                {shard_id: (worker.points_confirmed, 0, died.cause, [key])},
                allow_partial=False,
            )
            raise AssertionError("unreachable: strict casualties raise")

    def series_stats(self, key: Hashable) -> Any:
        """One series' :class:`~repro.streaming.SeriesStats`, from its shard.

        Raises :class:`KeyError` for a key no shard has seen (the
        worker's error travels back over the command protocol), and
        :class:`ShardDownError` when the owning shard's circuit breaker
        is open.
        """
        return self._request_supervised(
            self.shard_of(key), "series_stats", key
        )

    # -------------------------------------------------------------- fleet ops

    def keys(self, *, allow_partial: bool = False) -> dict:
        """Every shard's series keys: ``{shard_id: [key, ...]}``.

        With ``allow_partial=True`` a down shard maps to ``None``
        instead of raising :class:`ShardDownError`.
        """
        report: dict[str, Any] = {}
        for shard_id in sorted(self._workers):
            try:
                report[shard_id] = self._request_supervised(shard_id, "keys")
            except ShardDownError:
                if not allow_partial:
                    raise
                report[shard_id] = None
        return report

    def stats(self, *, allow_partial: bool = False) -> ClusterStats:
        """Aggregate fleet statistics across every shard.

        With ``allow_partial=True`` down shards are skipped -- their
        series are absent from the totals -- and named in the returned
        :attr:`ClusterStats.down_shards`.
        """
        shards: dict[str, FleetStats] = {}
        down: list[str] = []
        for shard_id in sorted(self._workers):
            try:
                shards[shard_id] = self._request_supervised(shard_id, "stats")
            except ShardDownError:
                if not allow_partial:
                    raise
                down.append(shard_id)
        return ClusterStats(
            series_total=sum(s.series_total for s in shards.values()),
            series_live=sum(s.series_live for s in shards.values()),
            series_warming=sum(s.series_warming for s in shards.values()),
            points_total=sum(s.points_total for s in shards.values()),
            anomalies_total=sum(s.anomalies_total for s in shards.values()),
            shards=shards,
            down_shards=tuple(down),
        )

    def checkpoint(self) -> dict:
        """Checkpoint every shard; returns ``{shard_id: CheckpointSummary}``."""
        return {
            shard_id: self._request_supervised(shard_id, "checkpoint")
            for shard_id in sorted(self._workers)
        }

    # ------------------------------------------------------- shard elasticity

    def _fleet_request(
        self, worker: _ShardWorker, command: str, payload: Any
    ) -> Any:
        """``_request`` with internal exceptions mapped to public ones.

        Used by migration, where a blind retry is *not* safe (an
        ``extract`` may have committed on the source) -- a death or
        exhausted transient surfaces immediately for the operator.
        """
        try:
            return self._request(worker, command, payload)
        except _WorkerDied:
            raise WorkerCrashError(
                worker.spec.shard_id,
                f"worker died during {command!r}; call failover() and "
                "re-drive the migration",
            ) from None
        except _TransientShardError as error:
            raise ShardingError(
                f"shard {worker.spec.shard_id!r}: {error.kind} during "
                f"{command!r}: {error.message}"
            ) from None

    def _migrate(
        self, source: _ShardWorker, target: _ShardWorker, keys: list
    ) -> int:
        """Move ``keys`` from ``source`` to ``target`` (drain, then adopt).

        The source commits the extraction (checkpoint) before the states
        travel, the target commits the adoption on arrival -- the moved
        series continue bit-identically.  The router holds the states for
        the in-between moment; see ``extract_series`` for the crash
        window trade-off.
        """
        if not keys:
            return 0
        states = self._fleet_request(source, "extract", keys)
        self._fleet_request(target, "adopt", states)
        source.points_confirmed = int(
            self._fleet_request(source, "points_total", None)
        )
        target.points_confirmed = int(
            self._fleet_request(target, "points_total", None)
        )
        return len(states)

    def add_shard(self, spec: ShardSpec) -> int:
        """Grow the cluster by one shard, live-migrating its keys to it.

        Spawns the new worker (on an empty or previously-drained store),
        adds it to the ring, and drains from every existing shard exactly
        the keys the ring now assigns to the newcomer (~``1/n`` of the
        fleet).  Returns the number of series moved.
        """
        if self._closed:
            raise ShardingError("router is closed")
        if not isinstance(spec, ShardSpec):
            raise TypeError(f"spec must be a ShardSpec, got {type(spec).__name__}")
        if spec.shard_id in self._workers:
            raise ValueError(f"shard {spec.shard_id!r} is already in the cluster")
        newcomer = self._spawn(spec)
        self._workers[spec.shard_id] = newcomer
        self._ring.add_shard(spec.shard_id)
        moved = 0
        for shard_id in sorted(self._workers):
            if shard_id == spec.shard_id:
                continue
            source = self._alive(shard_id)
            resident = self._fleet_request(source, "keys", None)
            moving = [
                key for key in resident
                if self._ring.shard_for(key) == spec.shard_id
            ]
            moved += self._migrate(source, newcomer, moving)
        self.cluster = ClusterSpec(
            engine=self.cluster.engine,
            shards=self.cluster.shards + (spec,),
            virtual_nodes=self.cluster.virtual_nodes,
        )
        return moved

    def remove_shard(self, shard_id: str) -> int:
        """Drain a live shard and retire it.  Returns the series moved.

        Every resident series is extracted (committed off the source),
        re-assigned by the shrunken ring, and adopted by its new shard;
        the retired worker then checkpoints and exits cleanly, leaving
        its store drained but intact.
        """
        worker = self._alive(shard_id)
        if len(self._workers) < 2:
            raise ShardingError(
                "cannot remove the last shard; close() the router instead"
            )
        resident = self._fleet_request(worker, "keys", None)
        self._ring.remove_shard(shard_id)
        moved = 0
        try:
            if resident:
                parts: dict[str, list] = {}
                for key in resident:
                    parts.setdefault(self._ring.shard_for(key), []).append(key)
                for target_id, keys in sorted(parts.items()):
                    moved += self._migrate(
                        worker, self._alive(target_id), keys
                    )
        except BaseException:
            # Put the shard back on the ring: un-moved keys still live on
            # it, and routing them elsewhere would strand them.
            self._ring.add_shard(shard_id)
            raise
        self._fleet_request(worker, "close", True)
        worker.process.join(timeout=30.0)
        worker.conn.close()
        del self._workers[shard_id]
        self._health.pop(shard_id, None)
        self.cluster = ClusterSpec(
            engine=self.cluster.engine,
            shards=tuple(
                shard
                for shard in self.cluster.shards
                if shard.shard_id != shard_id
            ),
            virtual_nodes=self.cluster.virtual_nodes,
        )
        return moved

    # -------------------------------------------------------------- lifecycle

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close(checkpoint=exc_type is None)

    def close(self, checkpoint: bool = True) -> None:
        """Shut every worker down (checkpointing first by default).

        Each worker gets one ``close_timeout`` grace window to
        checkpoint and exit; a worker still alive after it (hung, or
        stuck in an injected sleep) is SIGKILLed -- ``close`` always
        returns in bounded time.
        """
        if self._closed:
            return
        self._closed = True
        grace = self._close_timeout
        for shard_id, worker in self._workers.items():
            health = self._health.get(shard_id)
            if health is not None and health.down:
                continue  # already reaped by _mark_down
            try:
                worker.conn.send(("close", checkpoint))
            except (BrokenPipeError, OSError):
                continue
        for shard_id, worker in self._workers.items():
            health = self._health.get(shard_id)
            if health is not None and health.down:
                continue
            deadline = time.monotonic() + grace
            try:
                if worker.conn.poll(grace):
                    worker.conn.recv()
            except (EOFError, OSError):
                pass
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = {}
