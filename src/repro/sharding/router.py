"""Shard router: consistent-hash fan-out over durable worker processes.

:class:`ShardRouter` is the serving tier's front door.  It spawns one
:mod:`worker <repro.sharding.worker>` process per
:class:`~repro.sharding.ShardSpec`, each running a durable
:class:`~repro.streaming.MultiSeriesEngine` session over its own
exclusively-locked :class:`~repro.durability.DirectoryCheckpointStore`,
and routes by consistent hashing on the series key
(:class:`~repro.sharding.ConsistentHashRing` -- process-independent
``blake2b`` tokens, so the same key always reaches the same shard across
restarts).

**The hot path stays batched end to end.**  ``ingest`` takes the same
columnar forms the engine does, partitions the *columns* of a
``{key: values}`` grid by shard, and sends each worker exactly one
message per batch -- its keys plus its ``(L, k)`` sub-grid -- then fans
the per-shard :class:`~repro.streaming.IngestResult` arrays back into
one combined result with a few strided scatters.  No per-point IPC
anywhere.

**Failover is checkpoint-handoff.**  A worker that dies (SIGKILL
included) leaves a store whose ownership lease reads stale by dead pid;
the router spawns a replacement on the same store, which takes the lease
over, rebuilds from the last manifest and replays the surviving WAL
prefix bit-identically.  A death detected *mid-ingest* recovers first
and then raises :class:`~repro.sharding.ShardFailoverError` telling the
caller -- via WAL arithmetic, not guesswork -- whether the in-flight
batch survived into the log (state advanced; don't re-send) or was lost
before its append (re-send it).

**Shards are elastic.**  :meth:`add_shard` / :meth:`remove_shard`
migrate exactly the keys the ring reassigns (about ``1/n`` of the space)
by drain-and-adopt: the source engine extracts and commits, the target
adopts and commits, both via the engine's
``extract_series``/``adopt_series`` handoff -- the moved series continue
bit-identically on their new shard.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, NoReturn, Sequence

import numpy as np

from repro.sharding.errors import (
    ShardFailoverError,
    ShardingError,
    WorkerCrashError,
)
from repro.sharding.hashring import ConsistentHashRing
from repro.sharding.spec import ClusterSpec, ShardSpec
from repro.sharding.worker import worker_main
from repro.streaming.engine import FleetStats, IngestResult, MultiSeriesEngine

__all__ = ["ClusterStats", "FailoverReport", "ShardRouter"]

#: IngestResult array fields, in the order workers reply them
_RESULT_FIELDS = (
    "index",
    "value",
    "trend",
    "seasonal",
    "residual",
    "anomaly_score",
    "is_anomaly",
    "detection_residual",
    "live",
)


@dataclass(frozen=True, slots=True)
class FailoverReport:
    """Outcome of one shard failover (replacement already serving)."""

    shard_id: str
    recovered_points: int
    duration_seconds: float


@dataclass(frozen=True, slots=True)
class ClusterStats:
    """Fleet statistics aggregated across every shard."""

    series_total: int
    series_live: int
    series_warming: int
    points_total: int
    anomalies_total: int
    shards: dict = field(default_factory=dict)


class _WorkerDied(Exception):
    """Internal: the peer process died mid-conversation."""


class _ShardWorker:
    """Router-side handle of one worker process."""

    __slots__ = ("spec", "process", "conn", "points_confirmed")

    def __init__(self, spec: ShardSpec, process: Any, conn: Any, points: int):
        self.spec = spec
        self.process = process
        self.conn = conn
        #: observations this worker has durably applied (WAL-appended and
        #: advanced), from its ready report plus confirmed ingest replies.
        #: The failover arithmetic compares a replacement's recovered
        #: count against this to decide whether an in-flight batch
        #: survived into the WAL.
        self.points_confirmed = points


class ShardRouter:
    """Route a keyed fleet across durable worker processes.

    Parameters
    ----------
    cluster:
        The :class:`~repro.sharding.ClusterSpec` to serve.  Worker
        processes start immediately (recovering any existing store
        state); the router is ready when the constructor returns.
    wal_sync:
        Forwarded to every worker's store (``fsync`` per WAL append).
    auto_recover:
        ``True`` (default): a worker death detected mid-request triggers
        failover before the error surfaces, and the raised
        :class:`~repro.sharding.ShardFailoverError` says whether to
        re-send.  ``False``: the death raises
        :class:`~repro.sharding.WorkerCrashError` and the shard stays
        down until :meth:`failover` is called.
    checkpoint_interval:
        Per-worker auto-checkpoint cadence in WAL records (``None``:
        checkpoint only on :meth:`checkpoint`/:meth:`close` -- between
        those, durability rides on the WAL, which is the fast and still
        crash-safe default).
    request_timeout / spawn_timeout:
        Seconds to wait for a reply / for a worker to report ready
        (recovery of a large store happens inside the spawn window).
    stale_after:
        Store-lease staleness horizon, forwarded to workers.
    fault_injection:
        Tests only: ``{shard_id: {"kill_point": ..., "kill_after": n}}``
        arms a real ``SIGKILL`` at a named durability boundary in that
        worker.  Consumed at spawn -- the replacement brought up by
        failover starts clean instead of re-arming the same death.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        wal_sync: bool = False,
        auto_recover: bool = True,
        checkpoint_interval: int | None = None,
        request_timeout: float = 300.0,
        spawn_timeout: float = 600.0,
        stale_after: float | None = None,
        fault_injection: dict | None = None,
    ):
        if not isinstance(cluster, ClusterSpec):
            raise TypeError(
                f"cluster must be a ClusterSpec, got {type(cluster).__name__}"
            )
        self.cluster = cluster
        self.auto_recover = bool(auto_recover)
        self.request_timeout = float(request_timeout)
        self.spawn_timeout = float(spawn_timeout)
        self._wal_sync = bool(wal_sync)
        self._checkpoint_interval = checkpoint_interval
        self._stale_after = stale_after
        self._fault_injection = dict(fault_injection or {})
        self._spec_dict = cluster.engine.to_dict()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: spawn works too
            self._ctx = multiprocessing.get_context()
        self._ring = ConsistentHashRing(
            (shard.shard_id for shard in cluster.shards),
            virtual_nodes=cluster.virtual_nodes,
        )
        self._workers: dict[str, _ShardWorker] = {}
        self._closed = False
        try:
            for shard in cluster.shards:
                self._workers[shard.shard_id] = self._spawn(shard)
        except BaseException:
            self.close(checkpoint=False)
            raise

    # ------------------------------------------------------- worker lifecycle

    def _worker_options(self, shard_id: str) -> dict:
        options: dict = {"wal_sync": self._wal_sync}
        if self._checkpoint_interval is not None:
            options["checkpoint_interval"] = self._checkpoint_interval
        if self._stale_after is not None:
            options["stale_after"] = self._stale_after
        options.update(self._fault_injection.pop(shard_id, {}))
        return options

    def _spawn(self, spec: ShardSpec) -> _ShardWorker:
        """Start (or restart) the worker serving ``spec`` and await ready."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                spec.shard_id,
                spec.store_path,
                self._spec_dict,
                self._worker_options(spec.shard_id),
            ),
            name=f"repro-shard-{spec.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.spawn_timeout
        while not parent_conn.poll(0.05):
            if not process.is_alive():
                raise WorkerCrashError(
                    spec.shard_id,
                    "worker process died before reporting ready (store "
                    "locked by a live process, or recovery failed; check "
                    "its stderr)",
                )
            if time.monotonic() > deadline:
                process.kill()
                raise WorkerCrashError(
                    spec.shard_id,
                    f"worker did not report ready within {self.spawn_timeout}s",
                )
        status, info = parent_conn.recv()
        if status != "ready":
            process.join(timeout=5.0)
            raise WorkerCrashError(
                spec.shard_id, f"worker failed to start: {info}"
            )
        return _ShardWorker(spec, process, parent_conn, int(info["points_total"]))

    def _recv(self, worker: _ShardWorker) -> tuple[str, Any]:
        """Await one reply, raising :class:`_WorkerDied` on process death."""
        deadline = time.monotonic() + self.request_timeout
        try:
            while not worker.conn.poll(0.05):
                if not worker.process.is_alive():
                    raise _WorkerDied()
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        worker.spec.shard_id,
                        f"no reply within {self.request_timeout}s "
                        "(worker alive but stuck)",
                    )
            return worker.conn.recv()
        except (EOFError, OSError):
            raise _WorkerDied() from None

    def _request(self, worker: _ShardWorker, command: str, payload: Any) -> Any:
        """One synchronous command round-trip, errors re-raised locally."""
        try:
            worker.conn.send((command, payload))
        except (BrokenPipeError, OSError):
            raise _WorkerDied() from None
        return self._request_reply(worker)

    def _alive(self, shard_id: str) -> _ShardWorker:
        if self._closed:
            raise ShardingError("router is closed")
        worker = self._workers.get(shard_id)
        if worker is None:
            raise ShardingError(f"no shard {shard_id!r} in this cluster")
        return worker

    def failover(self, shard_id: str) -> FailoverReport:
        """Replace a dead worker: reopen its store, replay its WAL, serve on.

        The replacement takes over the dead process' stale store lease,
        rebuilds from the last committed manifest and replays the
        surviving WAL prefix -- state continues bit-identically with the
        log.  Raises :class:`~repro.sharding.ShardingError` if the worker
        is still alive (kill it first; live workers are drained with
        :meth:`remove_shard`, not failed over).
        """
        worker = self._alive(shard_id)
        # A killed worker's pipe hits EOF an instant before the process is
        # reapable (fds close before the exit notification), so a caller
        # reacting to the EOF can land here while ``is_alive()`` still says
        # yes; a short join closes that window without masking a worker
        # that is genuinely serving.
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            raise ShardingError(
                f"shard {shard_id!r}: worker pid {worker.process.pid} is "
                "alive; failover replaces dead workers only (use "
                "remove_shard() to drain a live one)"
            )
        start = time.perf_counter()
        worker.conn.close()
        worker.process.join()
        replacement = self._spawn(worker.spec)
        self._workers[shard_id] = replacement
        return FailoverReport(
            shard_id=shard_id,
            recovered_points=replacement.points_confirmed,
            duration_seconds=time.perf_counter() - start,
        )

    # ---------------------------------------------------------------- routing

    def shard_of(self, key: Hashable) -> str:
        """The shard id currently serving ``key``."""
        return self._ring.shard_for(key)

    @property
    def shard_ids(self) -> list[str]:
        """Shards in the cluster, sorted."""
        return sorted(self._workers)

    def _failover_in_flight(self, casualties: dict) -> NoReturn:
        """Handle worker deaths detected mid-ingest.

        ``casualties`` maps each dead shard to ``(points_before,
        rows_in_flight)``.  With :attr:`auto_recover` the shard is
        brought back *first*, then :class:`ShardFailoverError` reports
        whether the batch survived: the recovered count equals either
        ``points_before`` (the batch missed the WAL -- lost, re-send) or
        ``points_before + rows_in_flight`` (the WAL append preceded the
        death and replay applied it -- don't re-send).  A batch's WAL
        record is single and CRC-framed, so there is no partial case.
        """
        shard_id, (points_before, rows_in_flight) = next(iter(casualties.items()))
        if not self.auto_recover:
            raise WorkerCrashError(
                shard_id,
                "worker died mid-ingest and auto_recover is off; call "
                "failover() to bring the shard back",
            )
        first: ShardFailoverError | None = None
        for shard_id, (points_before, rows_in_flight) in casualties.items():
            report = self.failover(shard_id)
            survived = (
                report.recovered_points >= points_before + rows_in_flight
            )
            error = ShardFailoverError(
                shard_id, survived, report.recovered_points
            )
            if first is None:
                first = error
        assert first is not None  # casualties is never empty
        raise first

    def ingest(self, batch: "dict | tuple | Sequence") -> IngestResult:
        """Ingest one batch across the cluster; columnar in, columnar out.

        Accepts the engine's batched input forms -- a columnar ``{key:
        values}`` grid (the fast path), parallel ``(keys, values)``
        arrays, or an iterable of ``(key, value)`` rows -- partitions by
        shard, sends **one message per shard**, and returns one combined
        :class:`~repro.streaming.IngestResult` in the equivalent input
        order.  Per-shard application is not transactional across the
        cluster (a validation error on one shard leaves other shards'
        slices applied, mirroring the engine's own non-transactional
        batch contract); the raised error names the offending shard.

        If a worker dies mid-batch, see :class:`ShardFailoverError`.
        """
        if isinstance(batch, dict):
            round_keys, grid = MultiSeriesEngine._grid_from_dict(batch)
            return self._ingest_grid(round_keys, grid)
        if (
            isinstance(batch, tuple)
            and len(batch) == 2
            and isinstance(batch[1], np.ndarray)
        ):
            keys, values = batch
            values = np.asarray(values, dtype=float)
            keys = list(keys)
            if values.ndim != 1 or len(keys) != values.size:
                raise ValueError(
                    "parallel-array ingest expects (keys, values) of equal "
                    "length with a 1-D value array"
                )
        else:
            rows = list(batch)
            keys = [row[0] for row in rows]
            values = np.array([row[1] for row in rows], dtype=float)
        return self._ingest_rows(keys, values)

    def _ingest_grid(self, round_keys: list, grid: np.ndarray) -> IngestResult:
        """Fan a round-major ``(L, n)`` grid out by column, fan arrays in."""
        n_rounds, n = grid.shape
        result = IngestResult(round_keys, n_rounds)
        if n_rounds * n == 0:
            return result
        parts = self._ring.assignments(round_keys)
        sent: list[tuple[_ShardWorker, np.ndarray, int]] = []
        casualties: dict[str, tuple[int, int]] = {}
        for shard_id, positions in parts.items():
            worker = self._alive(shard_id)
            columns = np.asarray(positions, dtype=np.intp)
            sub_keys = [round_keys[position] for position in positions]
            sub_grid = np.ascontiguousarray(grid[:, columns])
            rows_in_flight = n_rounds * columns.size
            try:
                worker.conn.send(("ingest", (sub_keys, sub_grid)))
            except (BrokenPipeError, OSError):
                casualties[shard_id] = (worker.points_confirmed, rows_in_flight)
                continue
            sent.append((worker, columns, rows_in_flight))
        shard_error: BaseException | None = None
        for worker, columns, rows_in_flight in sent:
            try:
                arrays = self._request_reply(worker)
            except _WorkerDied:
                casualties[worker.spec.shard_id] = (
                    worker.points_confirmed,
                    rows_in_flight,
                )
                continue
            except (ValueError, TypeError, KeyError, RuntimeError) as error:
                # The shard applied a prefix of its slice and rejected a
                # value; other shards' replies still need draining.  The
                # worker's confirmed count is re-synced lazily below.
                shard_error = shard_error or error
                self._resync_points(worker)
                continue
            worker.points_confirmed += rows_in_flight
            width = columns.size
            for name, shard_array in zip(_RESULT_FIELDS, arrays):
                getattr(result, name).reshape(n_rounds, n)[:, columns] = (
                    shard_array.reshape(n_rounds, width)
                )
        if casualties:
            self._failover_in_flight(casualties)
        if shard_error is not None:
            raise shard_error
        return result

    def _ingest_rows(self, keys: list, values: np.ndarray) -> IngestResult:
        """Fan a flat ``(keys, values)`` batch out by row position."""
        result = IngestResult(keys, 1 if keys else 0)
        if not keys:
            return result
        parts = self._ring.assignments(keys)
        sent: list[tuple[_ShardWorker, np.ndarray]] = []
        casualties: dict[str, tuple[int, int]] = {}
        for shard_id, positions in parts.items():
            worker = self._alive(shard_id)
            take = np.asarray(positions, dtype=np.intp)
            sub_keys = [keys[position] for position in positions]
            try:
                worker.conn.send(("ingest_rows", (sub_keys, values[take])))
            except (BrokenPipeError, OSError):
                casualties[shard_id] = (worker.points_confirmed, take.size)
                continue
            sent.append((worker, take))
        shard_error: BaseException | None = None
        for worker, take in sent:
            try:
                arrays = self._request_reply(worker)
            except _WorkerDied:
                casualties[worker.spec.shard_id] = (
                    worker.points_confirmed,
                    take.size,
                )
                continue
            except (ValueError, TypeError, KeyError, RuntimeError) as error:
                shard_error = shard_error or error
                self._resync_points(worker)
                continue
            worker.points_confirmed += take.size
            for name, shard_array in zip(_RESULT_FIELDS, arrays):
                getattr(result, name)[take] = shard_array
        if casualties:
            self._failover_in_flight(casualties)
        if shard_error is not None:
            raise shard_error
        return result

    def _request_reply(self, worker: _ShardWorker) -> Any:
        """Receive one already-sent request's reply (shared error mapping)."""
        status, reply = self._recv(worker)
        if status == "error":
            kind, message = reply
            exception_type = {
                "ValueError": ValueError,
                "TypeError": TypeError,
                "KeyError": KeyError,
                "RuntimeError": RuntimeError,
            }.get(kind, ShardingError)
            raise exception_type(f"shard {worker.spec.shard_id!r}: {message}")
        return reply

    def _resync_points(self, worker: _ShardWorker) -> None:
        """Refresh a worker's confirmed-point count after a partial apply."""
        try:
            worker.points_confirmed = int(
                self._request(worker, "points_total", None)
            )
        except _WorkerDied:
            # Leave the stale count: the failover that follows replaces
            # this worker handle, and the replacement's count comes from
            # its fresh ready report -- a stale value here never persists.
            pass

    # ------------------------------------------------------------ single-key

    def process(self, key: Hashable, value: float) -> Any:
        """Ingest one observation for one series on its shard."""
        worker = self._alive(self.shard_of(key))
        try:
            record = self._request(worker, "process", (key, value))
        except _WorkerDied:
            self._failover_in_flight(
                {worker.spec.shard_id: (worker.points_confirmed, 1)}
            )
        worker.points_confirmed += 1
        return record

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` values ahead for one live series."""
        worker = self._alive(self.shard_of(key))
        try:
            return self._request(worker, "forecast", (key, int(horizon)))
        except _WorkerDied:
            self._failover_in_flight(
                {worker.spec.shard_id: (worker.points_confirmed, 0)}
            )

    # -------------------------------------------------------------- fleet ops

    def keys(self) -> dict[str, list]:
        """Every shard's series keys: ``{shard_id: [key, ...]}``."""
        return {
            shard_id: self._request(self._alive(shard_id), "keys", None)
            for shard_id in sorted(self._workers)
        }

    def stats(self) -> ClusterStats:
        """Aggregate fleet statistics across every shard."""
        shards: dict[str, FleetStats] = {}
        for shard_id in sorted(self._workers):
            shards[shard_id] = self._request(
                self._alive(shard_id), "stats", None
            )
        return ClusterStats(
            series_total=sum(s.series_total for s in shards.values()),
            series_live=sum(s.series_live for s in shards.values()),
            series_warming=sum(s.series_warming for s in shards.values()),
            points_total=sum(s.points_total for s in shards.values()),
            anomalies_total=sum(s.anomalies_total for s in shards.values()),
            shards=shards,
        )

    def checkpoint(self) -> dict:
        """Checkpoint every shard; returns ``{shard_id: CheckpointSummary}``."""
        return {
            shard_id: self._request(self._alive(shard_id), "checkpoint", None)
            for shard_id in sorted(self._workers)
        }

    # ------------------------------------------------------- shard elasticity

    def _migrate(self, source: _ShardWorker, target: _ShardWorker, keys: list) -> int:
        """Move ``keys`` from ``source`` to ``target`` (drain, then adopt).

        The source commits the extraction (checkpoint) before the states
        travel, the target commits the adoption on arrival -- the moved
        series continue bit-identically.  The router holds the states for
        the in-between moment; see ``extract_series`` for the crash
        window trade-off.
        """
        if not keys:
            return 0
        states = self._request(source, "extract", keys)
        self._request(target, "adopt", states)
        source.points_confirmed = int(
            self._request(source, "points_total", None)
        )
        target.points_confirmed = int(
            self._request(target, "points_total", None)
        )
        return len(states)

    def add_shard(self, spec: ShardSpec) -> int:
        """Grow the cluster by one shard, live-migrating its keys to it.

        Spawns the new worker (on an empty or previously-drained store),
        adds it to the ring, and drains from every existing shard exactly
        the keys the ring now assigns to the newcomer (~``1/n`` of the
        fleet).  Returns the number of series moved.
        """
        if self._closed:
            raise ShardingError("router is closed")
        if not isinstance(spec, ShardSpec):
            raise TypeError(f"spec must be a ShardSpec, got {type(spec).__name__}")
        if spec.shard_id in self._workers:
            raise ValueError(f"shard {spec.shard_id!r} is already in the cluster")
        newcomer = self._spawn(spec)
        self._workers[spec.shard_id] = newcomer
        self._ring.add_shard(spec.shard_id)
        moved = 0
        for shard_id in sorted(self._workers):
            if shard_id == spec.shard_id:
                continue
            source = self._workers[shard_id]
            resident = self._request(source, "keys", None)
            moving = [
                key for key in resident
                if self._ring.shard_for(key) == spec.shard_id
            ]
            moved += self._migrate(source, newcomer, moving)
        self.cluster = ClusterSpec(
            engine=self.cluster.engine,
            shards=self.cluster.shards + (spec,),
            virtual_nodes=self.cluster.virtual_nodes,
        )
        return moved

    def remove_shard(self, shard_id: str) -> int:
        """Drain a live shard and retire it.  Returns the series moved.

        Every resident series is extracted (committed off the source),
        re-assigned by the shrunken ring, and adopted by its new shard;
        the retired worker then checkpoints and exits cleanly, leaving
        its store drained but intact.
        """
        worker = self._alive(shard_id)
        if len(self._workers) < 2:
            raise ShardingError(
                "cannot remove the last shard; close() the router instead"
            )
        resident = self._request(worker, "keys", None)
        self._ring.remove_shard(shard_id)
        moved = 0
        try:
            if resident:
                parts: dict[str, list] = {}
                for key in resident:
                    parts.setdefault(self._ring.shard_for(key), []).append(key)
                for target_id, keys in sorted(parts.items()):
                    moved += self._migrate(
                        worker, self._workers[target_id], keys
                    )
        except BaseException:
            # Put the shard back on the ring: un-moved keys still live on
            # it, and routing them elsewhere would strand them.
            self._ring.add_shard(shard_id)
            raise
        self._request(worker, "close", True)
        worker.process.join(timeout=30.0)
        worker.conn.close()
        del self._workers[shard_id]
        self.cluster = ClusterSpec(
            engine=self.cluster.engine,
            shards=tuple(
                shard
                for shard in self.cluster.shards
                if shard.shard_id != shard_id
            ),
            virtual_nodes=self.cluster.virtual_nodes,
        )
        return moved

    # -------------------------------------------------------------- lifecycle

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close(checkpoint=exc_type is None)

    def close(self, checkpoint: bool = True) -> None:
        """Shut every worker down (checkpointing first by default)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                worker.conn.send(("close", checkpoint))
            except (BrokenPipeError, OSError):
                continue
        for worker in self._workers.values():
            try:
                if worker.conn.poll(30.0):
                    worker.conn.recv()
            except (EOFError, OSError):
                pass
            worker.process.join(timeout=30.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        self._workers = {}
