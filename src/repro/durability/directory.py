"""Directory-backed checkpoint store: manifest + segments + WAL files.

Layout under the root directory::

    MANIFEST.json            -- JSON manifest (the commit point)
    segments/seg-*.pkl       -- per-cohort state blobs
    wal/wal-*.log            -- write-ahead-log segments

Durability model
----------------
* **Manifest and segments** are written with tmp-file + ``fsync`` +
  ``os.replace`` + directory fsync, so each file is atomically either its
  old or its new content after a crash.  The manifest rename is the commit
  point of a checkpoint: segments referenced only by an un-renamed
  manifest are garbage, never half-adopted state.
* **WAL appends** are length- and CRC-framed.  Reading stops at the first
  incomplete or checksum-failing frame, so a crash mid-append costs at
  most the in-flight record and can never corrupt recovery.  Appends are
  flushed to the OS on every record (surviving a process crash); pass
  ``wal_sync=True`` to also ``fsync`` per append and survive host power
  loss at a substantial throughput cost.
* **Group commit**: :meth:`wal_append_many` frames a whole batch of
  records up front and writes it with *one* ``flush`` (and one ``fsync``
  when ``wal_sync=True``).  Framing is identical to per-record appends,
  so replay cannot tell the difference; a crash mid-batch loses only a
  suffix of the batch (each surviving record is complete).
* **Segment rotation**: with ``wal_segment_bytes`` set, an append that
  pushes the open segment past the limit seals it and opens the next
  part (``format.next_wal_name``).  Recovery replays the ordered chain,
  so rotation bounds the size of any one file without unbounding replay.

Fault injection
---------------
``fault_hook`` (``None`` by default) is called with a symbolic kill-point
name at every interesting moment -- ``wal.append.before/torn/after``
(once per batch for group commits; the torn simulation persists half the
*batch*, i.e. some complete frames then a torn one),
``wal.rotate.before/after``, ``segment.write.before/tmp/after``,
``manifest.swap.before/tmp/after``, ``delete.before`` -- and may raise to
simulate a crash at exactly that window.  The durability oracle tests
drive recovery through every one of these points; the hook costs one
attribute load per operation in production.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Callable, Iterator

from repro.durability.errors import CheckpointError, CorruptCheckpointError
from repro.durability.format import (
    decode_segment,
    next_wal_name,
    validate_manifest,
)
from repro.durability.lock import DEFAULT_STALE_AFTER, LOCK_FILE_NAME, StoreLock
from repro.durability.scrub import ScrubFinding, ScrubReport
from repro.durability.store import (
    CheckpointStore,
    atomic_write_bytes,
    fsync_directory,
)

__all__ = ["DirectoryCheckpointStore"]

#: WAL frame header: payload length + CRC32 of the payload
_FRAME_HEADER = struct.Struct("<II")

_MANIFEST_FILE = "MANIFEST.json"
_SEGMENT_DIRECTORY = "segments"
_WAL_DIRECTORY = "wal"
_QUARANTINE_DIRECTORY = "quarantine"


class DirectoryCheckpointStore(CheckpointStore):
    """A :class:`CheckpointStore` over one local directory.

    Parameters
    ----------
    root:
        Directory holding the session (created if missing, parents too).
        Accepts any :class:`os.PathLike`.
    wal_sync:
        ``False`` (default): WAL appends are flushed to the OS page cache
        per record -- they survive a killed process, which is the failure
        mode the recovery oracle pins down.  ``True``: additionally
        ``fsync`` every append, trading throughput for power-loss safety.
    exclusive:
        ``True``: take the store's ownership lease (a ``LOCK`` file in the
        root) before touching anything, raising
        :class:`~repro.durability.errors.StoreLockedError` when another
        live process holds it.  A lease whose holder pid is dead or whose
        heartbeat mtime is older than ``stale_after`` is taken over -- the
        checkpoint-handoff failover path.  Sharding workers always open
        their store exclusively.
    stale_after:
        Heartbeat-staleness horizon in seconds for ``exclusive`` mode
        (``None`` disables the mtime horizon; only a provably dead holder
        is then stale).
    wal_segment_bytes:
        ``None`` (default): one WAL segment grows until the next
        checkpoint.  A positive byte count: an append that pushes the
        open segment past the limit seals it and rotates to the next
        part, bounding any single file; recovery replays the chain.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        wal_sync: bool = False,
        exclusive: bool = False,
        stale_after: float | None = DEFAULT_STALE_AFTER,
        wal_segment_bytes: int | None = None,
    ):
        self.root = Path(os.fspath(root))
        self.wal_sync = bool(wal_sync)
        if wal_segment_bytes is not None and wal_segment_bytes <= 0:
            raise ValueError(
                f"wal_segment_bytes must be positive, got {wal_segment_bytes}"
            )
        self.wal_segment_bytes = wal_segment_bytes
        self._segments = self.root / _SEGMENT_DIRECTORY
        self._wals = self.root / _WAL_DIRECTORY
        self._wals.mkdir(parents=True, exist_ok=True)
        self._segments.mkdir(parents=True, exist_ok=True)
        # The ownership lease must be held before the tmp sweep below:
        # sweeping while another process is mid-checkpoint would delete
        # its in-flight tmp files out from under it.
        self.lock: StoreLock | None = None
        if exclusive:
            self.lock = StoreLock(
                self.root / LOCK_FILE_NAME, stale_after=stale_after
            ).acquire()
        # A crash between an atomic write's fsync and its rename leaves a
        # *.tmp file that nothing references (segment/WAL names embed the
        # generation, so the same tmp name never gets rewritten); sweep
        # them on open so crashed checkpoints cannot leak disk forever.
        # Only the store's own artifact names are touched -- the root may
        # be a pre-existing directory holding unrelated files -- and
        # exclusive ownership (the lease above, or the caller's own
        # single-process discipline) means nothing can be mid-write here.
        sweeps = [
            (self.root, _MANIFEST_FILE + ".tmp"),
            (self._segments, "*.tmp"),
            (self._wals, "*.tmp"),
        ]
        for directory, pattern in sweeps:
            for leftover in directory.glob(pattern):
                try:
                    leftover.unlink()
                except OSError:
                    pass
        self._wal_handle: BinaryIO | None = None
        self._wal_open_name: str | None = None
        #: last segment written through this store instance (fault
        #: injectors use it to target "the segment just checkpointed")
        self.last_segment_name: str | None = None
        #: byte offset of the last complete frame in the open WAL segment,
        #: and whether a failed append may have left torn bytes after it
        self._wal_good_offset = 0
        self._wal_torn = False
        #: test-only kill-point hook: ``hook(point_name)`` may raise to
        #: simulate a crash at that exact window
        self.fault_hook: Callable[[str], None] | None = None

    def _fault(self, point: str) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(point)

    def describe(self) -> str:
        return str(self.root)

    def heartbeat(self) -> None:
        """Refresh the ownership lease mtime (no-op without a lock)."""
        if self.lock is not None:
            self.lock.heartbeat()

    # ------------------------------------------------------------- manifest

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_FILE

    def read_manifest(self) -> dict | None:
        try:
            text = self.manifest_path.read_text()
        except FileNotFoundError:
            return None
        try:
            return json.loads(text)
        except ValueError as error:
            raise CorruptCheckpointError(
                f"{self.manifest_path}: manifest is not valid JSON ({error}); "
                "expected a MANIFEST.json written by engine.checkpoint()"
            ) from error

    def write_manifest(self, manifest: dict) -> None:
        self._fault("manifest.swap.before")
        atomic_write_bytes(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
            pre_replace_hook=lambda: self._fault("manifest.swap.tmp"),
        )
        self._fault("manifest.swap.after")

    # ------------------------------------------------------------- segments

    def _segment_path(self, name: str) -> Path:
        path = self._segments / name
        if path.parent != self._segments:
            raise ValueError(f"segment name {name!r} must be a bare file name")
        return path

    def write_segment(self, name: str, payload: bytes) -> None:
        self._fault("segment.write.before")
        atomic_write_bytes(
            self._segment_path(name),
            payload,
            pre_replace_hook=lambda: self._fault("segment.write.tmp"),
        )
        self.last_segment_name = name
        self._fault("segment.write.after")

    def read_segment(self, name: str) -> bytes:
        path = self._segment_path(name)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise CorruptCheckpointError(
                f"{path}: cohort segment named by the manifest is missing; "
                "the store has been tampered with or partially copied"
            ) from None

    def delete_segment(self, name: str) -> None:
        self._fault("delete.before")
        try:
            self._segment_path(name).unlink()
        except FileNotFoundError:
            pass

    def list_segments(self) -> list[str]:
        return sorted(
            entry.name
            for entry in self._segments.iterdir()
            if entry.is_file() and not entry.name.endswith(".tmp")
        )

    # ------------------------------------------------------------------ WAL

    def _wal_path(self, name: str) -> Path:
        path = self._wals / name
        if path.parent != self._wals:
            raise ValueError(f"WAL name {name!r} must be a bare file name")
        return path

    @staticmethod
    def _read_frames(handle: BinaryIO) -> Iterator[tuple[bytes, int]]:
        """Yield ``(payload, end_offset)`` for every complete frame.

        Streams one frame at a time (a long WAL is never loaded whole),
        stopping at the first incomplete or checksum-failing frame.
        """
        header_size = _FRAME_HEADER.size
        offset = 0
        while True:
            header = handle.read(header_size)
            if len(header) < header_size:
                return
            length, checksum = _FRAME_HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != checksum:
                return
            offset += header_size + length
            yield payload, offset

    def wal_start(self, name: str) -> None:
        self.close_wal()
        path = self._wal_path(name)
        # Drop a torn tail left by a crash mid-append *before* appending:
        # frames written after torn bytes would sit beyond the readable
        # prefix and be silently lost on the next recovery.
        keep = 0
        try:
            with open(path, "rb") as handle:
                for _payload, keep in self._read_frames(handle):
                    pass
                handle.seek(0, os.SEEK_END)
                total = handle.tell()
            if keep < total:
                with open(path, "r+b") as handle:
                    handle.truncate(keep)
        except FileNotFoundError:
            pass
        self._wal_handle = open(path, "ab")
        self._wal_open_name = name
        self._wal_good_offset = keep
        self._wal_torn = False

    def wal_append(self, record: bytes) -> None:
        if self._wal_handle is None:
            raise RuntimeError(
                "no WAL segment is open for appending; call wal_start() first"
            )
        if self._wal_torn:
            # A previous append failed mid-frame (I/O error, simulated
            # crash survived by the caller): drop the torn bytes before
            # writing anything new, or every later frame would sit beyond
            # the readable prefix and be silently lost at recovery.
            name = self._wal_open_name
            self._wal_handle.close()
            with open(self._wal_path(name), "r+b") as handle:
                handle.truncate(self._wal_good_offset)
            self._wal_handle = open(self._wal_path(name), "ab")
            self._wal_torn = False
        frame = _FRAME_HEADER.pack(len(record), zlib.crc32(record)) + record
        self._fault("wal.append.before")
        try:
            self._fault("wal.append.torn")
        except BaseException:
            # Simulated crash mid-write: persist a torn half-frame exactly
            # like a real kill between write() and completion would.
            self._wal_torn = True
            self._wal_handle.write(frame[: max(1, len(frame) // 2)])
            self._wal_handle.flush()
            raise
        try:
            self._wal_handle.write(frame)
            self._wal_handle.flush()
            if self.wal_sync:
                os.fsync(self._wal_handle.fileno())
        except BaseException:
            # write()/flush() may have persisted part of the frame.
            self._wal_torn = True
            raise
        self._wal_good_offset += len(frame)
        self._fault("wal.append.after")
        self._maybe_rotate()

    def wal_append_many(self, records: list[bytes]) -> None:
        """Group-commit: frame every record, then one write/flush/fsync.

        Framing is byte-identical to ``len(records)`` individual appends;
        only the I/O cadence changes.  The ``wal.append.*`` fault points
        fire once per *batch*, and the torn simulation persists half of
        the concatenated batch -- some complete leading frames, then a
        torn one -- which is exactly the mid-batch crash window.
        """
        if not records:
            return
        if self._wal_handle is None:
            raise RuntimeError(
                "no WAL segment is open for appending; call wal_start() first"
            )
        if self._wal_torn:
            # Same repair as wal_append: drop torn bytes left by a failed
            # earlier append before writing anything new.
            name = self._wal_open_name
            self._wal_handle.close()
            with open(self._wal_path(name), "r+b") as handle:
                handle.truncate(self._wal_good_offset)
            self._wal_handle = open(self._wal_path(name), "ab")
            self._wal_torn = False
        batch = b"".join(
            _FRAME_HEADER.pack(len(record), zlib.crc32(record)) + record
            for record in records
        )
        self._fault("wal.append.before")
        try:
            self._fault("wal.append.torn")
        except BaseException:
            self._wal_torn = True
            self._wal_handle.write(batch[: max(1, len(batch) // 2)])
            self._wal_handle.flush()
            raise
        try:
            self._wal_handle.write(batch)
            self._wal_handle.flush()
            if self.wal_sync:
                os.fsync(self._wal_handle.fileno())
        except BaseException:
            self._wal_torn = True
            raise
        self._wal_good_offset += len(batch)
        self._fault("wal.append.after")
        self._maybe_rotate()

    def _maybe_rotate(self) -> None:
        """Seal the open segment and open the next part when over-size."""
        if (
            self.wal_segment_bytes is None
            or self._wal_open_name is None
            or self._wal_good_offset < self.wal_segment_bytes
        ):
            return
        successor = next_wal_name(self._wal_open_name)
        self._fault("wal.rotate.before")
        self.wal_start(successor)
        self._fault("wal.rotate.after")

    def wal_records(self, name: str) -> Iterator[bytes]:
        try:
            handle = open(self._wal_path(name), "rb")
        except FileNotFoundError:
            return
        with handle:
            # A torn tail (incomplete frame or failed checksum) ends the
            # stream silently: the in-flight record was lost to the crash.
            for payload, _offset in self._read_frames(handle):
                yield payload

    def wal_frames(self, name: str) -> Iterator[tuple[bytes, int]]:
        """Yield ``(payload, end_offset)`` for every readable frame.

        Like :meth:`wal_records` but with each frame's end byte offset,
        so corruption-tolerant recovery can say exactly where the
        readable prefix of a damaged segment ends.
        """
        try:
            handle = open(self._wal_path(name), "rb")
        except FileNotFoundError:
            return
        with handle:
            yield from self._read_frames(handle)

    def wal_tail(self, name: str) -> tuple[int, int, int]:
        """``(frames, good_offset, total_bytes)`` of one WAL segment.

        ``good_offset`` is the end of the readable frame prefix;
        ``good_offset < total_bytes`` means the segment carries torn or
        corrupt bytes after it.  Raises :class:`FileNotFoundError` for a
        missing segment.
        """
        if name == self._wal_open_name and self._wal_handle is not None:
            self._wal_handle.flush()
        frames = 0
        good = 0
        with open(self._wal_path(name), "rb") as handle:
            for _payload, good in self._read_frames(handle):
                frames += 1
            handle.seek(0, os.SEEK_END)
            total = handle.tell()
        return frames, good, total

    def list_wals(self) -> list[str]:
        return sorted(
            entry.name
            for entry in self._wals.iterdir()
            if entry.is_file() and not entry.name.endswith(".tmp")
        )

    def wal_exists(self, name: str) -> bool:
        return self._wal_path(name).is_file()

    def wal_delete(self, name: str) -> None:
        if name == self._wal_open_name:
            raise ValueError(f"refusing to delete the open WAL segment {name!r}")
        self._fault("delete.before")
        try:
            self._wal_path(name).unlink()
        except FileNotFoundError:
            pass

    # ----------------------------------------------------------- quarantine

    @property
    def quarantine_dir(self) -> Path:
        """Directory damaged artifacts are moved into (created lazily).

        Outside ``segments/`` and ``wal/``, so quarantined files are
        invisible to :meth:`list_segments` / :meth:`list_wals` and
        survive checkpoint pruning -- the forensic evidence is kept, the
        recovery path never trips over it again.
        """
        return self.root / _QUARANTINE_DIRECTORY

    def _quarantine_target(self, name: str) -> Path:
        directory = self.quarantine_dir
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / name
        suffix = 1
        while target.exists():
            target = directory / f"{name}.{suffix}"
            suffix += 1
        return target

    def quarantine_segment(self, name: str) -> Path:
        """Move a damaged cohort segment aside; returns its new path."""
        target = self._quarantine_target(name)
        os.replace(self._segment_path(name), target)
        return target

    def quarantine_wal_segment(self, name: str) -> Path:
        """Move a whole WAL segment aside; returns its new path."""
        if name == self._wal_open_name:
            raise ValueError(
                f"refusing to quarantine the open WAL segment {name!r}"
            )
        target = self._quarantine_target(name)
        os.replace(self._wal_path(name), target)
        return target

    def quarantine_wal_suffix(self, name: str, from_offset: int) -> int:
        """Move a WAL segment's bytes from ``from_offset`` on aside.

        The readable prefix stays in place (its frames replayed fine);
        the damaged suffix is copied to quarantine and truncated away so
        later appends cannot sit beyond unreadable bytes.  Returns the
        number of bytes quarantined.
        """
        if name == self._wal_open_name:
            raise ValueError(
                f"refusing to edit the open WAL segment {name!r}"
            )
        path = self._wal_path(name)
        with open(path, "rb") as handle:
            handle.seek(from_offset)
            suffix = handle.read()
        if suffix:
            target = self._quarantine_target(f"{name}.suffix@{from_offset}")
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(suffix)
            with open(path, "r+b") as handle:
                handle.truncate(from_offset)
        return len(suffix)

    def list_quarantined(self) -> list[str]:
        """Names of every quarantined artifact (empty when dir absent)."""
        try:
            return sorted(
                entry.name
                for entry in self.quarantine_dir.iterdir()
                if entry.is_file()
            )
        except FileNotFoundError:
            return []

    # ----------------------------------------------------------------- scrub

    def verify(self, deep: bool = True) -> ScrubReport:
        """Scrub manifest -> segments -> WAL chain; report every problem.

        Read-only: nothing is repaired or quarantined.  ``deep`` also
        unpickles each cohort segment (CRC alone cannot catch a segment
        written corrupt); frame CRCs already cover WAL payloads.  A torn
        tail on the *final* WAL segment is reported non-fatal -- it is
        ordinary crash debris that recovery truncates silently.
        """
        findings: list[ScrubFinding] = []
        segments_checked = 0
        wal_checked = 0
        frames_checked = 0
        source = self.manifest_path
        try:
            manifest = self.read_manifest()
            if manifest is not None:
                manifest = validate_manifest(manifest, source)
        except CheckpointError as error:
            findings.append(
                ScrubFinding("manifest", "invalid", str(error))
            )
            manifest = None
        if manifest is None:
            return ScrubReport(findings=tuple(findings))

        for cohort in manifest["cohorts"]:
            name = cohort["segment"]
            try:
                payload = self._segment_path(name).read_bytes()
            except FileNotFoundError:
                findings.append(
                    ScrubFinding(
                        name,
                        "missing",
                        "cohort segment named by the manifest is absent",
                    )
                )
                continue
            segments_checked += 1
            expected_crc = cohort.get("crc")
            if expected_crc is not None and zlib.crc32(payload) != expected_crc:
                findings.append(
                    ScrubFinding(
                        name,
                        "crc_mismatch",
                        f"segment bytes hash to {zlib.crc32(payload)}, "
                        f"manifest says {expected_crc}",
                    )
                )
                continue
            if deep:
                try:
                    decode_segment(payload, self._segment_path(name))
                except CheckpointError as error:
                    findings.append(
                        ScrubFinding(name, "undecodable", str(error))
                    )

        # The replayable chain is the manifest's, extended by existence
        # (rotation after the checkpoint adds parts the manifest never
        # saw) -- the same walk recovery does.
        chain = list(manifest["wal"])
        while True:
            successor = next_wal_name(chain[-1])
            if not self.wal_exists(successor):
                break
            chain.append(successor)
        for position, name in enumerate(chain):
            final = position == len(chain) - 1
            try:
                frames, good, total = self.wal_tail(name)
            except FileNotFoundError:
                findings.append(
                    ScrubFinding(
                        name,
                        "missing",
                        "WAL segment named by the manifest chain is absent",
                    )
                )
                continue
            wal_checked += 1
            frames_checked += frames
            if good < total:
                if final:
                    findings.append(
                        ScrubFinding(
                            name,
                            "torn_tail",
                            f"{total - good} torn bytes after the last "
                            f"complete frame (offset {good}) -- crash "
                            "debris, repaired on next recovery",
                            fatal=False,
                        )
                    )
                else:
                    findings.append(
                        ScrubFinding(
                            name,
                            "trailing_bytes",
                            f"{total - good} unreadable bytes at offset "
                            f"{good} of a non-final chain segment: every "
                            "record after them (including later segments) "
                            "is unreachable",
                        )
                    )
        return ScrubReport(
            findings=tuple(findings),
            segments_checked=segments_checked,
            wal_segments_checked=wal_checked,
            wal_frames_checked=frames_checked,
        )

    def close_wal(self) -> None:
        """Close the open WAL segment handle (if any)."""
        if self._wal_handle is not None:
            try:
                self._wal_handle.close()
            finally:
                self._wal_handle = None
                self._wal_open_name = None
                self._wal_good_offset = 0
                self._wal_torn = False

    def close(self) -> None:
        self.close_wal()
        if self.lock is not None:
            self.lock.release()
