"""Scrub reports, quarantine records, and the manifest key codec.

Pure data types shared by :meth:`DirectoryCheckpointStore.verify` (the
offline scrub) and the engine's corruption-tolerant recovery (the
``strict | truncate | quarantine`` policy of ``MultiSeriesEngine.open``).
Nothing here touches disk -- these are the *vocabulary* the store and
engine use to say exactly what was damaged and what was done about it,
down to the series keys affected, so "degraded" is never silent.

The manifest key codec at the bottom exists because quarantine must name
a corrupt cohort's keys *without decoding its segment* (the segment is
the thing that is corrupt).  Checkpoints therefore write each cohort's
key list into the JSON manifest; since series keys are arbitrary
hashables (tuples, bytes, ...), the codec maps them losslessly onto
JSON-able shapes and back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

__all__ = [
    "QuarantinedCohort",
    "QuarantinedWalSuffix",
    "RECOVERY_POLICIES",
    "RecoveryReport",
    "ScrubFinding",
    "ScrubReport",
    "decode_manifest_keys",
    "encode_manifest_keys",
]

#: recovery policies accepted by ``MultiSeriesEngine.open(recovery=...)``
#: -- ``strict`` raises on any damage (the pre-PR-9 behavior),
#: ``truncate`` stops WAL replay at the first bad frame but still raises
#: on segment damage, ``quarantine`` moves damaged artifacts aside and
#: serves every unaffected series.
RECOVERY_POLICIES = ("strict", "truncate", "quarantine")


# ------------------------------------------------------------------ scrubbing


@dataclass(frozen=True, slots=True)
class ScrubFinding:
    """One problem ``store.verify()`` found.

    ``artifact`` is the file (or ``"manifest"``); ``problem`` is a stable
    machine-readable slug (``missing``, ``crc_mismatch``, ``undecodable``,
    ``trailing_bytes``, ``torn_tail``, ``invalid``); ``detail`` is the
    human sentence.  ``fatal`` findings mean a strict recovery of this
    store would raise; a non-fatal finding (the torn tail of the *final*
    WAL segment) is ordinary crash debris that recovery repairs silently.
    """

    artifact: str
    problem: str
    detail: str
    fatal: bool = True


@dataclass(frozen=True, slots=True)
class ScrubReport:
    """Everything ``store.verify()`` checked and everything it found."""

    findings: tuple[ScrubFinding, ...] = ()
    segments_checked: int = 0
    wal_segments_checked: int = 0
    wal_frames_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when a strict recovery of this store would succeed."""
        return not any(finding.fatal for finding in self.findings)

    def __str__(self) -> str:
        status = "ok" if self.ok else "CORRUPT"
        summary = (
            f"scrub {status}: {self.segments_checked} segments, "
            f"{self.wal_segments_checked} WAL segments "
            f"({self.wal_frames_checked} frames)"
        )
        if not self.findings:
            return summary
        lines = [summary] + [
            f"  [{'FATAL' if finding.fatal else 'note'}] "
            f"{finding.artifact}: {finding.problem} -- {finding.detail}"
            for finding in self.findings
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------- quarantine


@dataclass(frozen=True, slots=True)
class QuarantinedCohort:
    """One cohort whose segment was moved aside instead of loaded.

    ``keys`` are the series keys that cohort held (decoded from the
    manifest's key list); they are the exact set of series missing from
    the recovered engine.
    """

    cohort_id: int
    segment: str
    keys: tuple[Hashable, ...]
    reason: str


@dataclass(frozen=True, slots=True)
class QuarantinedWalSuffix:
    """A WAL suffix (bad frame onward, plus any later chain segments)
    moved aside instead of replayed.

    ``from_offset`` is the byte offset of the first unreadable frame in
    ``segment``; everything before it replayed normally.
    """

    segment: str
    from_offset: int
    bytes_quarantined: int
    reason: str


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What a non-strict recovery actually did.

    Attached to the recovered engine as ``engine.last_recovery`` and
    surfaced through the shard worker's ready info so the router's
    ``health()`` can name every affected key.  ``clean`` recoveries (the
    overwhelmingly common case) get a report with empty tuples.
    """

    policy: str
    quarantined_cohorts: tuple[QuarantinedCohort, ...] = ()
    quarantined_wal: tuple[QuarantinedWalSuffix, ...] = ()
    wal_records_replayed: int = 0
    wal_records_lost: int = 0
    findings: tuple[ScrubFinding, ...] = field(default=())

    @property
    def clean(self) -> bool:
        return not (
            self.quarantined_cohorts or self.quarantined_wal or self.findings
        )

    @property
    def affected_keys(self) -> tuple[Hashable, ...]:
        """Every series key named by a quarantined cohort, in order."""
        seen: dict[Hashable, None] = {}
        for cohort in self.quarantined_cohorts:
            for key in cohort.keys:
                seen.setdefault(key, None)
        return tuple(seen)

    def to_dict(self) -> dict:
        """JSON/pickle-able summary for crossing the worker pipe."""
        encoded_keys = []
        for key in self.affected_keys:
            one = encode_manifest_keys([key])
            if one is not None:
                encoded_keys.append(one[0])
        return {
            "policy": self.policy,
            "clean": self.clean,
            "affected_keys": encoded_keys,
            "quarantined_cohorts": [
                {
                    "cohort_id": cohort.cohort_id,
                    "segment": cohort.segment,
                    "reason": cohort.reason,
                }
                for cohort in self.quarantined_cohorts
            ],
            "quarantined_wal": [
                {
                    "segment": suffix.segment,
                    "from_offset": suffix.from_offset,
                    "bytes_quarantined": suffix.bytes_quarantined,
                    "reason": suffix.reason,
                }
                for suffix in self.quarantined_wal
            ],
            "wal_records_replayed": self.wal_records_replayed,
            "wal_records_lost": self.wal_records_lost,
        }


# ----------------------------------------------------------- manifest key codec
#
# Series keys are arbitrary hashables; JSON is not.  The codec maps the
# hashable shapes the engine actually sees (str/int/bool/None, finite
# floats, bytes, and tuples thereof) onto unambiguous JSON:
#
#   str/int/bool/None/finite float  ->  themselves
#   tuple                           ->  {"t": [encoded elements]}
#   bytes                           ->  {"b": "<hex>"}
#
# A key outside that family (a custom object, a NaN) is *not encodable*:
# encode_manifest_keys returns None for the whole cohort, the manifest
# carries no key list, and quarantine for that cohort degrades from
# "named keys" to "cohort N, keys unknown" -- visible, never wrong.


def _encode_key(key: Any) -> Any:
    if key is None or isinstance(key, (str, bool, int)):
        return key
    if isinstance(key, float):
        if not math.isfinite(key):
            raise ValueError("non-finite float key")
        return key
    if isinstance(key, bytes):
        return {"b": key.hex()}
    if isinstance(key, tuple):
        return {"t": [_encode_key(element) for element in key]}
    raise ValueError(f"unencodable key type {type(key).__name__}")


def encode_manifest_keys(keys: Iterable[Hashable]) -> list | None:
    """Encode a cohort's key list for the JSON manifest.

    Returns ``None`` when any key falls outside the encodable family --
    the cohort is then listed without keys rather than with wrong ones.
    """
    try:
        return [_encode_key(key) for key in keys]
    except ValueError:
        return None


def _decode_key(encoded: Any) -> Hashable:
    if isinstance(encoded, dict):
        if "b" in encoded:
            return bytes.fromhex(encoded["b"])
        if "t" in encoded:
            return tuple(_decode_key(element) for element in encoded["t"])
        raise ValueError(f"unknown encoded key shape {sorted(encoded)}")
    return encoded


def decode_manifest_keys(encoded: Any) -> tuple[Hashable, ...] | None:
    """Inverse of :func:`encode_manifest_keys`; ``None`` passes through."""
    if encoded is None:
        return None
    if not isinstance(encoded, list):
        raise ValueError(
            f"manifest cohort 'keys' must be a list, found "
            f"{type(encoded).__name__}"
        )
    return tuple(_decode_key(element) for element in encoded)
