"""Durable engine sessions: checkpoint stores, segments and the WAL.

This package turns the engine's persistence from "one big pickle per
``save()``" into a database-grade lifecycle (the Cambridge Report's
log-structured durability, applied to streaming decomposition state):

* :class:`CheckpointStore` -- the storage contract: an atomic manifest,
  per-cohort state segments, and an appendable write-ahead log;
* :class:`DirectoryCheckpointStore` -- the directory-backed
  implementation (tmp-write + rename everywhere, CRC-framed WAL);
* :class:`SingleSnapshotStore` -- the one-file store behind the legacy
  ``save``/``load`` API, now atomic;
* the format layer -- versioned manifest schema, segment/WAL codecs and
  the v1 snapshot migration;
* error types that always say which file, what was found and what was
  expected.

The session API itself lives on the engine:
``MultiSeriesEngine.open(store, spec=...)`` opens (or crash-recovers) a
durable session, ``engine.checkpoint()`` writes only dirty cohorts, and
every ingested batch is WAL-appended before state advances -- see
:mod:`repro.streaming.engine`.
"""

from repro.durability.directory import DirectoryCheckpointStore
from repro.durability.errors import (
    CheckpointError,
    CheckpointVersionError,
    CorruptCheckpointError,
    StoreLockedError,
)
from repro.durability.lock import StoreLock
from repro.durability.format import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointSummary,
    migrate_snapshot_payload,
)
from repro.durability.scrub import (
    RECOVERY_POLICIES,
    QuarantinedCohort,
    QuarantinedWalSuffix,
    RecoveryReport,
    ScrubFinding,
    ScrubReport,
)
from repro.durability.store import (
    CheckpointStore,
    SingleSnapshotStore,
    atomic_write_bytes,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointSummary",
    "CheckpointVersionError",
    "CorruptCheckpointError",
    "DirectoryCheckpointStore",
    "QuarantinedCohort",
    "QuarantinedWalSuffix",
    "RECOVERY_POLICIES",
    "RecoveryReport",
    "ScrubFinding",
    "ScrubReport",
    "SingleSnapshotStore",
    "StoreLock",
    "StoreLockedError",
    "atomic_write_bytes",
    "migrate_snapshot_payload",
]
