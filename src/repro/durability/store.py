"""Checkpoint storage abstraction and the single-file snapshot store.

:class:`CheckpointStore` is the contract a durable engine session is
written against: a small namespaced blob store (one **manifest**, many
**cohort segments**) plus an appendable **write-ahead log**.  An engine
whose full lifecycle -- open, ingest, checkpoint, crash, recover -- goes
through this interface can be rebuilt on any worker from data alone, which
is exactly what the sharding roadmap needs.  The directory-backed
implementation lives in :mod:`repro.durability.directory`; alternative
backends (object stores, replicated logs) only need to honour two
invariants:

* :meth:`write_manifest` and :meth:`write_segment` are **atomic**: after a
  crash at any moment a reader sees either the complete old artifact or
  the complete new one, never a torn mixture;
* :meth:`wal_records` returns the longest **complete prefix** of appended
  records: a crash mid-append may lose the in-flight record, but never
  yields a damaged one and never drops an earlier record.

:class:`SingleSnapshotStore` is the degenerate one-file store behind the
legacy ``engine.save(path)`` / ``MultiSeriesEngine.load(path)`` API: a
single whole-engine snapshot, written atomically (tmp file + ``fsync`` +
``os.replace``), with no WAL and no incremental segments.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterator

from repro.durability.errors import CorruptCheckpointError

__all__ = [
    "CheckpointStore",
    "SingleSnapshotStore",
    "atomic_write_bytes",
    "fsync_directory",
]


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a just-renamed file survives a crash.

    ``os.replace`` makes the rename atomic, but on POSIX the *directory*
    holding the new name must itself be fsynced for the rename to be
    durable.  Platforms whose directory handles cannot be fsynced (e.g.
    Windows) simply skip this -- the rename is still atomic there.
    """
    try:
        handle = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(handle)
    except OSError:
        pass
    finally:
        os.close(handle)


def atomic_write_bytes(
    path: Path,
    data: bytes,
    pre_replace_hook: Callable[[], None] | None = None,
) -> None:
    """Write ``data`` to ``path`` atomically: tmp + fsync + ``os.replace``.

    A crash at any moment leaves either the previous content of ``path``
    or the new content -- never a truncated file.  ``pre_replace_hook``
    (test-only) runs after the tmp file is durable but before the rename,
    which is the interesting crash window.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as stream:
        stream.write(data)
        stream.flush()
        os.fsync(stream.fileno())
    if pre_replace_hook is not None:
        pre_replace_hook()
    os.replace(tmp, path)
    fsync_directory(path.parent)


class CheckpointStore(ABC):
    """Storage contract of a durable engine session (manifest/segments/WAL)."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable location of the store (for error messages)."""

    # ------------------------------------------------------------- manifest

    @abstractmethod
    def read_manifest(self) -> dict | None:
        """The current manifest document, or ``None`` for an empty store."""

    @abstractmethod
    def write_manifest(self, manifest: dict) -> None:
        """Atomically replace the manifest (the checkpoint commit point)."""

    # ------------------------------------------------------------- segments

    @abstractmethod
    def write_segment(self, name: str, payload: bytes) -> None:
        """Atomically write one cohort segment blob under ``name``."""

    @abstractmethod
    def read_segment(self, name: str) -> bytes:
        """Read one segment blob (raises ``CorruptCheckpointError`` if absent)."""

    @abstractmethod
    def delete_segment(self, name: str) -> None:
        """Delete one segment blob (missing blobs are ignored)."""

    @abstractmethod
    def list_segments(self) -> list[str]:
        """Names of every stored segment blob (any order)."""

    # ------------------------------------------------------------------ WAL

    @abstractmethod
    def wal_start(self, name: str) -> None:
        """Open WAL segment ``name`` for appending (created if missing).

        Any previously open WAL segment is closed first.  Appending to an
        existing segment continues after its last complete record.
        """

    @abstractmethod
    def wal_append(self, record: bytes) -> None:
        """Append one record to the open WAL segment and flush it."""

    def wal_append_many(self, records: list[bytes]) -> None:
        """Append a batch of records (group commit where the backend can).

        The default is a per-record loop; backends override it to frame
        every record up front and pay one flush/fsync for the whole
        batch.  Record framing is unchanged either way: replay cannot
        tell a group commit from individual appends, and a crash
        mid-batch loses only a suffix of the batch.
        """
        for record in records:
            self.wal_append(record)

    @abstractmethod
    def wal_records(self, name: str) -> Iterator[bytes]:
        """Iterate the longest complete prefix of records in segment ``name``.

        A torn tail (crash mid-append) ends the iteration silently; a
        missing segment yields nothing -- both are the defined crash
        windows, not errors.
        """

    @abstractmethod
    def list_wals(self) -> list[str]:
        """Names of every WAL segment present (any order)."""

    @abstractmethod
    def wal_delete(self, name: str) -> None:
        """Delete one WAL segment (missing segments are ignored)."""

    def wal_exists(self, name: str) -> bool:
        """Whether WAL segment ``name`` is present (even if empty).

        Recovery walks the rotation chain by *existence*, not by record
        count: a crash between opening a fresh part and its first append
        leaves an empty segment that is still part of the chain.
        """
        return name in self.list_wals()

    def close(self) -> None:
        """Release any open handles (idempotent)."""


class SingleSnapshotStore:
    """One pickle file holding one whole-engine snapshot.

    This is the storage behind the legacy ``save``/``load`` API: no WAL,
    no per-cohort segments, the whole engine serialized on every write --
    but the write is **atomic** (tmp + fsync + ``os.replace``), so a crash
    mid-save can no longer truncate the only copy of the checkpoint.

    The container format is pickle (the numeric per-series state has no
    flat representation), so snapshot files carry pickle's trust model:
    :meth:`read` must only be pointed at files from trusted sources.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(os.fspath(path))

    def describe(self) -> str:
        return str(self.path)

    def write(
        self, payload: dict, pre_replace_hook: Callable[[], None] | None = None
    ) -> None:
        """Atomically replace the snapshot with ``payload`` (pickled)."""
        atomic_write_bytes(
            self.path,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            pre_replace_hook=pre_replace_hook,
        )

    def read(self) -> dict:
        """Load the snapshot payload.

        Raises ``FileNotFoundError`` if no snapshot exists and
        :class:`CorruptCheckpointError` (naming the file) if the bytes are
        not a readable pickle.
        """
        with open(self.path, "rb") as stream:
            data = stream.read()
        try:
            return pickle.loads(data)
        except Exception as error:
            raise CorruptCheckpointError(
                f"{self.path}: not a readable checkpoint pickle ({error}); "
                "expected a file written by MultiSeriesEngine.save()"
            ) from error
