"""On-disk checkpoint format: versioning, manifest schema, record codecs.

One format version covers every durable artifact the engine writes:

* the **single-file snapshot** (``MultiSeriesEngine.save``): a pickle of
  ``{format_version, engine_spec, series, generation}``;
* the **store manifest** (``MANIFEST.json`` of a directory store): JSON of
  ``{format_version, generation, engine_spec, cohorts, wal}`` -- the root
  of a durable session, naming the per-cohort segment files and the WAL
  segment that together reconstruct the engine;
* **cohort segments**: a pickle of ``{key: per-series state}`` for one
  cohort of series;
* **WAL records**: a pickle of one ingested batch in columnar form,
  appended *before* the engine advances its state.

Version history
---------------
1
    PR 2's single-file snapshot: ``{format_version, engine_spec, series}``.
2
    Adds the durable-session artifacts (manifest / segments / WAL) and a
    ``generation`` lineage counter to the single-file snapshot.  Version-1
    snapshots are migrated on read (:func:`migrate_snapshot_payload`):
    the per-series state is unchanged, so migration only stamps the new
    fields.
3
    The manifest's ``wal`` entry becomes an ordered *chain* of WAL
    segment names (size-based rotation seals a segment and opens the
    next part), and WAL file names gain a part suffix
    (``wal-GGGGGGGG-PPPP.log``).  Version-2 manifests and snapshots are
    migrated on read: the single WAL name is wrapped into a length-1
    chain; per-series and per-cohort state is unchanged.

The codecs here are pure data-plumbing -- they know nothing about the
engine -- so the streaming layer can evolve independently of the bytes on
disk, and a future sharding router can read manifests without importing
the engine at all.
"""

from __future__ import annotations

import pickle
import re
from dataclasses import dataclass
from typing import Any, Mapping

from repro.durability.errors import CheckpointVersionError, CorruptCheckpointError

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "MIGRATABLE_FORMAT_VERSIONS",
    "CheckpointSummary",
    "build_manifest",
    "decode_segment",
    "decode_wal_record",
    "encode_segment",
    "encode_wal_record",
    "migrate_snapshot_payload",
    "next_wal_name",
    "segment_name",
    "validate_manifest",
    "wal_name",
]

#: version stamp written into (and required from) every durable artifact
CHECKPOINT_FORMAT_VERSION = 3

#: older artifact versions that migrate transparently on read
MIGRATABLE_FORMAT_VERSIONS = (1, 2)

#: manifest keys required by :func:`validate_manifest`
_MANIFEST_KEYS = ("format_version", "generation", "engine_spec", "cohorts", "wal")


@dataclass(frozen=True)
class CheckpointSummary:
    """What one ``engine.checkpoint()`` call actually wrote.

    ``cohorts_written``/``series_written`` cover only *dirty* cohorts --
    on a mostly-idle fleet they are a small fraction of
    ``cohorts_total``/``series_total``, which is the whole point of
    incremental checkpoints.
    """

    generation: int
    cohorts_total: int
    cohorts_written: int
    series_total: int
    series_written: int


def segment_name(generation: int, cohort_id: int) -> str:
    """Canonical file name of one cohort's segment at one generation."""
    return f"seg-{generation:08d}-{cohort_id:06d}.pkl"


def wal_name(generation: int, part: int = 0) -> str:
    """Canonical file name of WAL part ``part`` following ``generation``."""
    return f"wal-{generation:08d}-{part:04d}.log"


#: both WAL name shapes: v3 ``wal-GGGGGGGG-PPPP.log`` and the legacy v2
#: ``wal-GGGGGGGG.log`` (a rotation of a legacy name continues at part 1)
_WAL_NAME = re.compile(r"^wal-(\d{8})(?:-(\d{4}))?\.log$")


def next_wal_name(name: str) -> str:
    """Name of the WAL part that follows ``name`` after a rotation."""
    match = _WAL_NAME.match(name)
    if match is None:
        raise ValueError(f"not a WAL segment name: {name!r}")
    generation = int(match.group(1))
    part = int(match.group(2)) if match.group(2) is not None else 0
    return wal_name(generation, part + 1)


# ---------------------------------------------------------------- snapshots


def migrate_snapshot_payload(payload: Any, source: object) -> dict:
    """Validate a single-file snapshot payload, migrating old versions.

    Returns a payload at :data:`CHECKPOINT_FORMAT_VERSION`.  Raises
    :class:`CorruptCheckpointError` when the payload is not a snapshot at
    all, and :class:`CheckpointVersionError` when it comes from a version
    this build neither speaks nor migrates -- both naming ``source``.
    """
    if not isinstance(payload, Mapping) or "format_version" not in payload:
        found = (
            f"keys {sorted(payload)}"
            if isinstance(payload, Mapping)
            else f"a {type(payload).__name__}"
        )
        raise CorruptCheckpointError(
            f"{source}: not a MultiSeriesEngine checkpoint (missing "
            f"format_version; found {found})"
        )
    version = payload["format_version"]
    if version == CHECKPOINT_FORMAT_VERSION:
        return dict(payload)
    if version in MIGRATABLE_FORMAT_VERSIONS:
        # v1/v2 -> v3: the per-series state is unchanged; stamp the
        # lineage counter (a v1 snapshot predates generations).  The WAL
        # chain lives only in directory-store manifests, so single-file
        # snapshots need nothing else.
        migrated = dict(payload)
        migrated["format_version"] = CHECKPOINT_FORMAT_VERSION
        migrated.setdefault("generation", 0)
        return migrated
    raise CheckpointVersionError(
        source,
        version,
        CHECKPOINT_FORMAT_VERSION,
        detail=(
            f"migratable older versions: {list(MIGRATABLE_FORMAT_VERSIONS)}; "
            "re-save the checkpoint with a matching build"
        ),
    )


# ----------------------------------------------------------------- manifest


def build_manifest(
    generation: int,
    engine_spec: dict,
    cohorts: list[dict],
    wal: str | list[str],
) -> dict:
    """Assemble a manifest document (plain JSON-able data).

    ``wal`` is the ordered chain of WAL segment names to replay; a bare
    string is normalized into a length-1 chain.
    """
    chain = [wal] if isinstance(wal, str) else list(wal)
    return {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "generation": int(generation),
        "engine_spec": engine_spec,
        "cohorts": cohorts,
        "wal": chain,
    }


def validate_manifest(manifest: Any, source: object) -> dict:
    """Check a decoded manifest's shape; raise with file context if bad."""
    if not isinstance(manifest, Mapping):
        raise CorruptCheckpointError(
            f"{source}: manifest must be a JSON object, found "
            f"{type(manifest).__name__}"
        )
    missing = [key for key in _MANIFEST_KEYS if key not in manifest]
    if missing:
        raise CorruptCheckpointError(
            f"{source}: manifest is missing required keys {missing} "
            f"(expected {list(_MANIFEST_KEYS)}, found {sorted(manifest)})"
        )
    version = manifest["format_version"]
    if version != CHECKPOINT_FORMAT_VERSION and version not in (
        MIGRATABLE_FORMAT_VERSIONS
    ):
        raise CheckpointVersionError(source, version, CHECKPOINT_FORMAT_VERSION)
    cohorts = manifest["cohorts"]
    if not isinstance(cohorts, list) or not all(
        isinstance(cohort, Mapping) and "id" in cohort and "segment" in cohort
        for cohort in cohorts
    ):
        raise CorruptCheckpointError(
            f"{source}: manifest 'cohorts' must be a list of "
            "{id, segment, ...} objects"
        )
    validated = dict(manifest)
    # v2 -> v3: the single WAL name becomes a length-1 chain.
    wal = validated["wal"]
    if isinstance(wal, str):
        validated["wal"] = [wal]
    elif not (
        isinstance(wal, list)
        and wal
        and all(isinstance(name, str) for name in wal)
    ):
        raise CorruptCheckpointError(
            f"{source}: manifest 'wal' must be a non-empty ordered list of "
            f"WAL segment names, found {wal!r}"
        )
    validated["format_version"] = CHECKPOINT_FORMAT_VERSION
    return validated


# ----------------------------------------------------------------- segments


def encode_segment(states: dict) -> bytes:
    """Serialize one cohort's ``{key: per-series state}`` mapping."""
    return pickle.dumps(states, protocol=pickle.HIGHEST_PROTOCOL)


def decode_segment(payload: bytes, source: object) -> dict:
    """Deserialize a cohort segment, raising with file context if bad."""
    try:
        states = pickle.loads(payload)
    except Exception as error:
        raise CorruptCheckpointError(
            f"{source}: cohort segment is not a readable pickle ({error})"
        ) from error
    if not isinstance(states, dict):
        raise CorruptCheckpointError(
            f"{source}: cohort segment must decode to a dict of per-series "
            f"state, found {type(states).__name__}"
        )
    return states


# -------------------------------------------------------------- WAL records


def encode_wal_record(kind: str, *parts: object) -> bytes:
    """Serialize one WAL record: an ingested batch in columnar form."""
    return pickle.dumps((kind, *parts), protocol=pickle.HIGHEST_PROTOCOL)


def decode_wal_record(payload: bytes, source: object) -> tuple:
    """Deserialize a WAL record, raising with file context if bad."""
    try:
        record = pickle.loads(payload)
    except Exception as error:
        raise CorruptCheckpointError(
            f"{source}: WAL record is not a readable pickle ({error})"
        ) from error
    if not isinstance(record, tuple) or not record or not isinstance(record[0], str):
        raise CorruptCheckpointError(
            f"{source}: WAL record must decode to a (kind, ...) tuple, "
            f"found {type(record).__name__}"
        )
    return record
