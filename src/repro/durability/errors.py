"""Checkpoint-store error types.

All durability errors subclass :class:`ValueError` so existing callers
that guard ``save``/``load`` with ``except ValueError`` keep working, but
the finer-grained classes let new code distinguish "this file is from a
different format era" (:class:`CheckpointVersionError` -- possibly fixable
by migrating or upgrading) from "this file is damaged"
(:class:`CorruptCheckpointError` -- fall back to an older generation or a
backup).

Every message names the file (or store) involved, what was found and what
was expected: a checkpoint error usually surfaces on an operator's console
during an incident, far from the code that wrote the file.
"""

from __future__ import annotations

__all__ = [
    "CheckpointError",
    "CheckpointVersionError",
    "CorruptCheckpointError",
    "StoreLockedError",
]


class CheckpointError(ValueError):
    """Base class for checkpoint-store failures (a :class:`ValueError`)."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint artifact exists but cannot be decoded.

    Raised for unreadable pickles, invalid manifest JSON, malformed
    sections and checksum mismatches.  The message always names the
    offending file and what was found there.
    """


class StoreLockedError(CheckpointError):
    """Another live process holds the store's ownership lease.

    Carries the lease ``path`` and the ``holder`` document (``pid``,
    ``host``, ``acquired_at``) read from it, so an operator can decide
    whether to wait, kill the holder, or point the new session elsewhere.
    Raised only for a *live* holder -- leases whose pid is gone or whose
    heartbeat is stale are taken over silently.
    """

    def __init__(self, path: object, holder: dict):
        self.path = str(path)
        self.holder = dict(holder)
        pid = self.holder.get("pid", "?")
        host = self.holder.get("host", "")
        where = f" on {host}" if host else ""
        super().__init__(
            f"{self.path}: store is locked by live process {pid}{where}; "
            "close that session (or wait for its lease to go stale) before "
            "opening this store for writing"
        )


class CheckpointVersionError(CheckpointError):
    """A checkpoint artifact comes from an unsupported format version.

    Carries the offending ``source`` (file or store), the ``found``
    version and the ``expected`` version so tooling can decide whether a
    migration applies.
    """

    def __init__(
        self, source: object, found: object, expected: object, detail: str = ""
    ):
        self.source = str(source)
        self.found = found
        self.expected = expected
        message = (
            f"{self.source}: checkpoint format_version {found!r} is not "
            f"supported by this build (expected {expected!r})"
        )
        if detail:
            message = f"{message}; {detail}"
        super().__init__(message)
