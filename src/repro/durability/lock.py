"""Store ownership lock: one writer process per checkpoint store.

A :class:`DirectoryCheckpointStore` assumes single-process ownership --
its WAL appends and segment writes are atomic individually, but two
processes interleaving them would corrupt the *logical* stream (two WALs
racing one manifest).  :class:`StoreLock` makes that assumption
enforceable: a lease file created with ``O_CREAT | O_EXCL`` whose content
names the holder (pid, host, acquisition time) and whose **mtime is the
heartbeat** -- the holder refreshes it periodically, and a prospective
owner treats the lease as stale (and takes it over) when either

* the holder pid no longer exists on this host (the SIGKILLed-worker
  case: the dead process can never write again, so takeover is safe), or
* the heartbeat mtime is older than ``stale_after`` seconds (covers pid
  reuse and hung processes; generous by default).

Takeover is race-free between concurrent claimants: the stale lease is
first **renamed** aside (exactly one renamer wins; ``os.rename`` of an
existing file is atomic on POSIX), and only the winner creates the fresh
lease.  Losers re-enter the acquisition loop and find the new, live
lease.

A held lock is advisory -- nothing stops a process that never looks at
the lease -- but every engine-facing entry point that opts in
(``DirectoryCheckpointStore(..., exclusive=True)``, which the sharding
workers always use) acquires it before touching any store artifact.
"""

from __future__ import annotations

import errno
import json
import os
import time
from pathlib import Path

from repro.durability.errors import StoreLockedError

__all__ = ["StoreLock"]

#: lease file name inside the store root
LOCK_FILE_NAME = "LOCK"

#: default heartbeat-staleness horizon (seconds); generous because the
#: primary staleness signal is the holder pid being gone, and mtime age
#: only matters for pid-reuse and hung-holder corner cases.
DEFAULT_STALE_AFTER = 30.0


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The process exists but belongs to another user.
        return True
    except OSError:
        # Platforms where signal 0 probing is unsupported: assume alive
        # (the mtime horizon still bounds how long a stale lease survives).
        return True
    return True


class StoreLock:
    """An exclusive, heartbeat-refreshed lease file.

    Parameters
    ----------
    path:
        Location of the lease file (conventionally ``<store root>/LOCK``).
    stale_after:
        Heartbeat age (seconds) beyond which a lease whose holder cannot
        be proven dead is still considered stale.  ``None`` disables the
        mtime horizon -- only a provably dead holder pid is then stale.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        stale_after: float | None = DEFAULT_STALE_AFTER,
    ):
        self.path = Path(os.fspath(path))
        self.stale_after = None if stale_after is None else float(stale_after)
        self._held = False

    # ------------------------------------------------------------ inspection

    @property
    def held(self) -> bool:
        """Whether *this object* currently holds the lease."""
        return self._held

    def read_holder(self) -> dict | None:
        """The current lease document, or ``None`` when unlocked.

        A lease file that cannot be parsed reads as ``{"pid": -1}``: it
        claims the store (the file exists) but can never match a live
        process, so it is reclaimable through the staleness rules.
        """
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return {"pid": -1}
        try:
            holder = json.loads(text)
        except ValueError:
            return {"pid": -1}
        if not isinstance(holder, dict):
            return {"pid": -1}
        return holder

    def _lease_is_stale(self) -> bool:
        """Whether the existing lease may be taken over."""
        holder = self.read_holder()
        if holder is None:
            # Already released between our EEXIST and this check.
            return True
        pid = holder.get("pid")
        if isinstance(pid, int) and not _pid_alive(pid):
            return True
        if self.stale_after is not None:
            try:
                age = time.time() - self.path.stat().st_mtime
            except OSError:
                return True
            if age > self.stale_after:
                return True
        return False

    # ------------------------------------------------------------- lifecycle

    def acquire(self) -> "StoreLock":
        """Take the lease or raise :class:`StoreLockedError`.

        Returns ``self`` so construction and acquisition chain:
        ``StoreLock(path).acquire()``.
        """
        if self._held:
            return self
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "host": os.uname().nodename if hasattr(os, "uname") else "",
                "acquired_at": time.time(),
            }
        ).encode()
        # Two attempts: the original claim, and one retry after a
        # successful stale-lease takeover.  A second EEXIST means another
        # claimant won the takeover race and is live -- locked.
        for _attempt in range(8):
            try:
                descriptor = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if not self._lease_is_stale():
                    holder = self.read_holder() or {}
                    raise StoreLockedError(self.path, holder)
                # Atomically steal the stale lease: exactly one claimant's
                # rename succeeds; everyone else loops and re-examines.
                stale_name = self.path.with_name(
                    f"{self.path.name}.stale.{os.getpid()}"
                )
                try:
                    os.rename(self.path, stale_name)
                except OSError as error:
                    if error.errno not in (errno.ENOENT,):
                        raise
                    continue
                try:
                    os.unlink(stale_name)
                except OSError:
                    pass
                continue
            try:
                os.write(descriptor, payload)
                os.fsync(descriptor)
            finally:
                os.close(descriptor)
            self._held = True
            return self
        raise StoreLockedError(self.path, self.read_holder() or {})

    def heartbeat(self) -> None:
        """Refresh the lease mtime (no-op when not held).

        Cheap (one ``utime`` syscall), so callers may invoke it once per
        handled request/batch rather than on a timer.
        """
        if not self._held:
            return
        try:
            os.utime(self.path)
        except OSError:
            # A vanished lease file surfaces on the next acquire/steal; a
            # heartbeat must never take the holding process down.
            pass

    def release(self) -> None:
        """Drop the lease (idempotent; never raises on a vanished file)."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.release()
