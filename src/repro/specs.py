"""Declarative, serializable pipeline configuration.

A monitoring deployment should be describable as *data*: a JSON document
that names each component by its stable registry name plus its primitive
constructor parameters.  That is what the spec classes here are -- plain
frozen dataclasses of JSON-able primitives that round-trip through
``to_dict()`` / ``from_dict()`` (and ``to_json()`` / ``from_json()``) and
rebuild the live objects via :func:`build`:

    >>> spec = PipelineSpec(
    ...     decomposer=DecomposerSpec("oneshotstl", {"period": 24}),
    ...     detector=DetectorSpec("nsigma", {"threshold": 5.0}),
    ... )
    >>> pipeline = build(PipelineSpec.from_dict(spec.to_dict()))

Because a spec is data, it can be shipped to a worker process, stored next
to a checkpoint, diffed in code review, or templated per metric class --
none of which a factory callable can do.  The engine checkpoint format
(:meth:`repro.streaming.engine.MultiSeriesEngine.save`) embeds an
:class:`EngineSpec` for exactly this reason.

Spec params must be JSON primitives (``None``/bool/int/float/str and
lists/dicts thereof); anything else -- a custom initializer object, a
callable -- is rejected at construction time so that non-portable
configuration fails loudly instead of disappearing on serialization.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import registry

__all__ = [
    "ComponentSpec",
    "DecomposerSpec",
    "DetectorSpec",
    "EngineSpec",
    "ForecasterSpec",
    "PipelineSpec",
    "build",
    "spec_of",
]


def _check_primitive(value: Any, context: str) -> Any:
    """Validate that ``value`` is a JSON-serializable primitive tree."""
    if isinstance(value, float) and not math.isfinite(value):
        # json.dumps would emit NaN/Infinity, which is not valid JSON
        # (RFC 8259) -- the spec would fail exactly when shipped elsewhere.
        raise ValueError(
            f"{context}: parameter values must be finite (got {value!r}); "
            "non-finite floats do not survive JSON serialization"
        )
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_primitive(item, context) for item in value]
    if isinstance(value, Mapping):
        result = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"{context}: mapping keys must be strings, got {key!r}"
                )
            result[key] = _check_primitive(item, context)
        return result
    raise ValueError(
        f"{context}: parameter values must be JSON primitives "
        f"(None/bool/int/float/str, lists or string-keyed dicts of them); "
        f"got {type(value).__name__}"
    )


def _reject_unknown_keys(data: Mapping, allowed: tuple, context: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValueError(
            f"{context}: unknown keys {sorted(unknown)}; expected a subset of "
            f"{list(allowed)}"
        )


@dataclass(frozen=True)
class ComponentSpec:
    """Base spec: a registry name plus primitive constructor parameters."""

    name: str
    params: dict = field(default_factory=dict)

    #: registry namespace the name resolves in (set by subclasses)
    kind = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"{type(self).__name__}.name must be a non-empty string")
        if not isinstance(self.params, Mapping):
            raise ValueError(f"{type(self).__name__}.params must be a mapping")
        object.__setattr__(
            self, "params", _check_primitive(dict(self.params), type(self).__name__)
        )

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ComponentSpec":
        _reject_unknown_keys(data, ("name", "params"), cls.__name__)
        if "name" not in data:
            raise ValueError(f"{cls.__name__}: missing required key 'name'")
        return cls(name=data["name"], params=dict(data.get("params", {})))

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ComponentSpec":
        return cls.from_dict(json.loads(text))

    def component_class(self) -> type:
        """Resolve the registered class this spec names."""
        return registry.get_component(self.kind, self.name)

    def build(self):
        """Instantiate the component: ``registered_class(**params)``."""
        return self.component_class()(**self.params)


class DecomposerSpec(ComponentSpec):
    """Spec of an online decomposer (``repro.registry`` kind ``decomposer``)."""

    kind = registry.DECOMPOSER


class DetectorSpec(ComponentSpec):
    """Spec of a pipeline's streaming anomaly scorer (kind ``scorer``).

    Named after the pipeline stage it configures; the classes it resolves
    to are the streaming scorers (e.g. ``"nsigma"`` ->
    :class:`repro.core.nsigma.NSigma`), not the batch
    :class:`~repro.anomaly.base.AnomalyDetector` benchmark methods (those
    live in the ``detector`` registry namespace).
    """

    kind = registry.SCORER


class ForecasterSpec(ComponentSpec):
    """Spec of a standalone forecaster (kind ``forecaster``)."""

    kind = registry.FORECASTER


def spec_of(
    component: object, spec_class: type[ComponentSpec] | None = None
) -> ComponentSpec | None:
    """Derive a component spec from a *live* component, or ``None``.

    Requires the component's class to be registered and to implement
    ``get_params()`` returning its primitive constructor parameters.
    Components that cannot be described portably (unregistered classes, or
    ``get_params`` raising because e.g. a custom initializer object was
    injected) yield ``None``.
    """
    candidates = (
        [spec_class]
        if spec_class is not None
        else [DecomposerSpec, DetectorSpec, ForecasterSpec]
    )
    get_params = getattr(component, "get_params", None)
    if get_params is None:
        return None
    for candidate in candidates:
        name = registry.component_name(candidate.kind, type(component))
        if name is None:
            continue
        try:
            return candidate(name=name, params=get_params())
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class PipelineSpec:
    """Spec of a :class:`~repro.streaming.pipeline.StreamingPipeline`."""

    decomposer: DecomposerSpec
    detector: DetectorSpec = field(
        default_factory=lambda: DetectorSpec("nsigma", {"threshold": 5.0})
    )

    def __post_init__(self) -> None:
        if not isinstance(self.decomposer, DecomposerSpec):
            raise ValueError("PipelineSpec.decomposer must be a DecomposerSpec")
        if not isinstance(self.detector, DetectorSpec):
            raise ValueError("PipelineSpec.detector must be a DetectorSpec")

    def to_dict(self) -> dict:
        return {
            "decomposer": self.decomposer.to_dict(),
            "detector": self.detector.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PipelineSpec":
        _reject_unknown_keys(data, ("decomposer", "detector"), cls.__name__)
        if "decomposer" not in data:
            raise ValueError("PipelineSpec: missing required key 'decomposer'")
        spec = {"decomposer": DecomposerSpec.from_dict(data["decomposer"])}
        if "detector" in data:
            spec["detector"] = DetectorSpec.from_dict(data["detector"])
        return cls(**spec)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        return cls.from_dict(json.loads(text))

    def build(self):
        """Construct the live :class:`StreamingPipeline`."""
        from repro.streaming.pipeline import StreamingPipeline

        return StreamingPipeline.from_spec(self)


@dataclass(frozen=True)
class EngineSpec:
    """Spec of a :class:`~repro.streaming.engine.MultiSeriesEngine`.

    ``overrides`` maps *string* series keys to the :class:`PipelineSpec`
    used for that key instead of the fleet default, so heterogeneous fleets
    (different periods or thresholds per metric class) are one engine with
    one spec.  Keys that are not strings always get the default pipeline
    (JSON object keys are strings, and the overrides must survive JSON).
    """

    pipeline: PipelineSpec
    initialization_length: int
    latency_window: int = 1024
    track_latency: bool = True
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.pipeline, PipelineSpec):
            raise ValueError("EngineSpec.pipeline must be a PipelineSpec")
        if not isinstance(self.initialization_length, int) or isinstance(
            self.initialization_length, bool
        ):
            raise ValueError("EngineSpec.initialization_length must be an int")
        if not isinstance(self.overrides, Mapping):
            raise ValueError("EngineSpec.overrides must be a mapping")
        for key, value in self.overrides.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"EngineSpec.overrides keys must be strings, got {key!r}"
                )
            if not isinstance(value, PipelineSpec):
                raise ValueError(
                    f"EngineSpec.overrides[{key!r}] must be a PipelineSpec"
                )
        object.__setattr__(self, "overrides", dict(self.overrides))

    def pipeline_for(self, key) -> PipelineSpec:
        """Pipeline spec for one series key (override or fleet default)."""
        if isinstance(key, str) and key in self.overrides:
            return self.overrides[key]
        return self.pipeline

    def to_dict(self) -> dict:
        return {
            "pipeline": self.pipeline.to_dict(),
            "initialization_length": self.initialization_length,
            "latency_window": self.latency_window,
            "track_latency": self.track_latency,
            "overrides": {
                key: spec.to_dict() for key, spec in self.overrides.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "EngineSpec":
        allowed = (
            "pipeline",
            "initialization_length",
            "latency_window",
            "track_latency",
            "overrides",
        )
        _reject_unknown_keys(data, allowed, cls.__name__)
        for required in ("pipeline", "initialization_length"):
            if required not in data:
                raise ValueError(f"EngineSpec: missing required key {required!r}")
        spec = {
            "pipeline": PipelineSpec.from_dict(data["pipeline"]),
            "initialization_length": data["initialization_length"],
        }
        if "latency_window" in data:
            spec["latency_window"] = data["latency_window"]
        if "track_latency" in data:
            spec["track_latency"] = bool(data["track_latency"])
        if "overrides" in data:
            spec["overrides"] = {
                key: PipelineSpec.from_dict(value)
                for key, value in data["overrides"].items()
            }
        return cls(**spec)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "EngineSpec":
        return cls.from_dict(json.loads(text))

    def build(self):
        """Construct the live :class:`MultiSeriesEngine`."""
        from repro.streaming.engine import MultiSeriesEngine

        return MultiSeriesEngine.from_spec(self)


def build(spec):
    """Build the live object described by any spec (dispatch on type)."""
    if isinstance(
        spec, (ComponentSpec, PipelineSpec, EngineSpec)
    ):
        return spec.build()
    raise TypeError(
        f"build() expects a spec instance, got {type(spec).__name__}"
    )
