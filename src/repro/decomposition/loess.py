"""LOESS (locally weighted regression) smoothing.

This is the smoothing primitive behind the classic STL decomposition
(Cleveland et al. 1990) and the OnlineSTL trend filter.  The implementation
performs degree-0 or degree-1 local regression with the tricube kernel and
optional per-point robustness weights (used by STL's outer loop).

Interior points, whose neighbourhood is a full window, are computed with a
vectorized convolution formulation; points near the boundaries fall back to
an explicit small loop.  This keeps the cost at ``O(n * window)`` with
numpy doing the heavy lifting.
"""

from __future__ import annotations

import numpy as np

from repro.utils import as_float_array, check_positive_int

__all__ = ["tricube_weights", "loess_smooth", "moving_average"]


def tricube_weights(distances: np.ndarray) -> np.ndarray:
    """Tricube kernel ``(1 - |u|^3)^3`` clipped to zero outside ``|u| < 1``."""
    distances = np.abs(np.asarray(distances, dtype=float))
    weights = np.clip(1.0 - distances ** 3, 0.0, None) ** 3
    return weights


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average returning a series of length ``len(values) - window + 1``."""
    values = as_float_array(values, "values")
    window = check_positive_int(window, "window")
    if window > values.size:
        raise ValueError("window cannot exceed the series length")
    cumulative = np.concatenate([[0.0], np.cumsum(values)])
    return (cumulative[window:] - cumulative[:-window]) / window


def _point_fit(
    values: np.ndarray,
    robustness: np.ndarray,
    center: int,
    half: int,
    degree: int,
) -> float:
    """Fit the local regression at ``center`` explicitly (boundary handling)."""
    n = values.size
    start = max(0, center - half)
    stop = min(n, center + half + 1)
    offsets = np.arange(start, stop) - center
    span = max(abs(offsets[0]), abs(offsets[-1])) + 1.0
    weights = tricube_weights(offsets / span) * robustness[start:stop]
    total = weights.sum()
    if total <= 0:
        return float(values[center])
    if degree == 0:
        return float(np.dot(weights, values[start:stop]) / total)
    s0 = total
    s1 = np.dot(weights, offsets)
    s2 = np.dot(weights, offsets ** 2)
    t0 = np.dot(weights, values[start:stop])
    t1 = np.dot(weights, offsets * values[start:stop])
    denominator = s0 * s2 - s1 ** 2
    if abs(denominator) < 1e-12:
        return float(t0 / s0)
    intercept = (s2 * t0 - s1 * t1) / denominator
    return float(intercept)


def loess_smooth(
    values,
    window: int,
    degree: int = 1,
    robustness_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Smooth ``values`` with LOESS.

    Parameters
    ----------
    values:
        One-dimensional series.
    window:
        Smoothing span (number of neighbours considered).  Even values are
        rounded up to the next odd number.
    degree:
        Local polynomial degree, ``0`` (weighted average) or ``1`` (local
        linear regression).
    robustness_weights:
        Optional per-point weights in ``[0, 1]`` (from STL's outer loop);
        defaults to all ones.

    Returns
    -------
    numpy.ndarray
        The smoothed series, same length as the input.
    """
    values = as_float_array(values, "values")
    window = check_positive_int(window, "window")
    if degree not in (0, 1):
        raise ValueError("degree must be 0 or 1")
    if window % 2 == 0:
        window += 1
    n = values.size
    if window >= 2 * n:
        window = 2 * (n - 1) + 1
    half = window // 2
    if robustness_weights is None:
        robustness = np.ones(n)
    else:
        robustness = np.asarray(robustness_weights, dtype=float)
        if robustness.shape != values.shape:
            raise ValueError("robustness_weights must match the series length")

    smoothed = np.empty(n)
    if half == 0:
        return values.copy()

    # Vectorized interior: the kernel weights only depend on the offset, so
    # every weighted sum is a correlation of the series with a fixed kernel.
    if n >= window:
        offsets = np.arange(-half, half + 1, dtype=float)
        kernel = tricube_weights(offsets / (half + 1.0))
        weighted = robustness * values
        s0 = np.correlate(robustness, kernel, mode="valid")
        t0 = np.correlate(weighted, kernel, mode="valid")
        if degree == 0:
            interior = t0 / np.where(s0 > 0, s0, 1.0)
        else:
            s1 = np.correlate(robustness, kernel * offsets, mode="valid")
            s2 = np.correlate(robustness, kernel * offsets ** 2, mode="valid")
            t1 = np.correlate(weighted, kernel * offsets, mode="valid")
            denominator = s0 * s2 - s1 ** 2
            safe = np.abs(denominator) > 1e-12
            interior = np.where(
                safe,
                (s2 * t0 - s1 * t1) / np.where(safe, denominator, 1.0),
                t0 / np.where(s0 > 0, s0, 1.0),
            )
        smoothed[half : n - half] = interior
        boundary_indices = list(range(half)) + list(range(n - half, n))
    else:
        boundary_indices = list(range(n))

    for center in boundary_indices:
        smoothed[center] = _point_fit(values, robustness, center, half, degree)
    return smoothed
