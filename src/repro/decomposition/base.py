"""Common types and interfaces for seasonal-trend decomposition.

Every decomposition method in this library -- batch or online, the paper's
OneShotSTL or one of the baselines -- produces the additive model

    y_t = trend_t + seasonal_t + residual_t

and is exposed through one of two small interfaces:

* :class:`BatchDecomposer` consumes a complete series and returns a
  :class:`DecompositionResult`.
* :class:`OnlineDecomposer` is initialized on a prefix of the series and is
  then fed one observation at a time, emitting a :class:`DecompositionPoint`
  per observation with bounded state.

Keeping these interfaces identical across methods is what makes the
downstream anomaly-detection and forecasting wrappers (Section 4 of the
paper) method agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils import as_float_array

__all__ = [
    "DecompositionPoint",
    "DecompositionResult",
    "BatchDecomposer",
    "OnlineDecomposer",
]


@dataclass(frozen=True)
class DecompositionPoint:
    """Decomposition of a single observation."""

    value: float
    trend: float
    seasonal: float
    residual: float

    def reconstruct(self) -> float:
        """Return ``trend + seasonal + residual`` (equals ``value`` by construction)."""
        return self.trend + self.seasonal + self.residual


@dataclass
class DecompositionResult:
    """Decomposition of a full series into trend, seasonal and residual."""

    observed: np.ndarray
    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    period: int

    def __post_init__(self) -> None:
        lengths = {
            self.observed.shape,
            self.trend.shape,
            self.seasonal.shape,
            self.residual.shape,
        }
        if len(lengths) != 1:
            raise ValueError("all decomposition components must have the same shape")

    def __len__(self) -> int:
        return int(self.observed.size)

    def reconstruct(self) -> np.ndarray:
        """Return ``trend + seasonal + residual``."""
        return self.trend + self.seasonal + self.residual

    def point(self, index: int) -> DecompositionPoint:
        """Return the decomposition of the observation at ``index``."""
        return DecompositionPoint(
            value=float(self.observed[index]),
            trend=float(self.trend[index]),
            seasonal=float(self.seasonal[index]),
            residual=float(self.residual[index]),
        )

    def tail(self, count: int) -> "DecompositionResult":
        """Return the last ``count`` points as a new result."""
        return DecompositionResult(
            observed=self.observed[-count:].copy(),
            trend=self.trend[-count:].copy(),
            seasonal=self.seasonal[-count:].copy(),
            residual=self.residual[-count:].copy(),
            period=self.period,
        )


class BatchDecomposer(ABC):
    """A method that decomposes a complete series in one shot."""

    #: seasonal period length used by the method
    period: int

    @abstractmethod
    def decompose(self, values) -> DecompositionResult:
        """Decompose ``values`` into trend, seasonal and residual components."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(period={getattr(self, 'period', None)})"


class OnlineDecomposer(ABC):
    """A method that decomposes a stream one observation at a time."""

    #: seasonal period length used by the method
    period: int

    #: whether :meth:`update` accepts NaN as a missing-value marker and
    #: imputes it internally; decomposers without imputation must not be
    #: fed NaN (it would silently poison their state).
    supports_missing: bool = False

    def get_params(self) -> dict:
        """Primitive constructor parameters for :mod:`repro.specs`.

        Registered decomposers override this to report the keyword
        arguments that reconstruct an equivalent fresh instance.  A
        ``ValueError`` signals a configuration that cannot be expressed as
        primitives (e.g. an injected initializer object).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose spec parameters"
        )

    @abstractmethod
    def initialize(self, values) -> DecompositionResult:
        """Fit the method on an initialization prefix and return its decomposition."""

    @abstractmethod
    def update(self, value: float) -> DecompositionPoint:
        """Consume one new observation and return its decomposition."""

    def decompose(self, values, initialization_length: int) -> DecompositionResult:
        """Convenience wrapper: initialize on a prefix, then stream the rest.

        The returned result covers the entire input; the first
        ``initialization_length`` points carry the initialization
        decomposition, the remaining points the online one.
        """
        values = as_float_array(values, "values", min_length=2)
        if not 0 < initialization_length < values.size:
            raise ValueError(
                "initialization_length must be positive and smaller than the series"
            )
        init_result = self.initialize(values[:initialization_length])
        trend = np.empty_like(values)
        seasonal = np.empty_like(values)
        residual = np.empty_like(values)
        trend[:initialization_length] = init_result.trend
        seasonal[:initialization_length] = init_result.seasonal
        residual[:initialization_length] = init_result.residual
        for index in range(initialization_length, values.size):
            point = self.update(float(values[index]))
            trend[index] = point.trend
            seasonal[index] = point.seasonal
            residual[index] = point.residual
        return DecompositionResult(
            observed=values,
            trend=trend,
            seasonal=seasonal,
            residual=residual,
            period=self.period,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(period={getattr(self, 'period', None)})"
