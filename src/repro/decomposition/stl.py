"""STL: Seasonal-Trend decomposition using LOESS (Cleveland et al. 1990).

This is a from-scratch implementation of the classic batch STL procedure
with the usual inner loop (cycle-subseries smoothing, low-pass filtering,
trend smoothing) and an optional outer loop of bisquare robustness weights.
It serves three roles in the reproduction:

* the ``STL`` baseline of Table 2 / Figure 5,
* the building block of the ``Window-STL`` online baseline, and
* the default initialization routine of the online methods (OneShotSTL and
  OnlineSTL both run STL on the initialization window, exactly as in the
  paper's Section 3.2).

Small, documented simplification: when extending smoothed cycle-subseries
by one period on each side, the extension repeats the first/last smoothed
value of the subseries instead of extrapolating the local regression.  The
effect is confined to the first and last period and does not change any of
the evaluation conclusions.
"""

from __future__ import annotations

import numpy as np

from repro.decomposition.base import BatchDecomposer, DecompositionResult
from repro.decomposition.loess import loess_smooth, moving_average
from repro.utils import as_float_array, check_period, check_positive_int

__all__ = ["STL", "next_odd"]


def next_odd(value: float) -> int:
    """Smallest odd integer greater than or equal to ``value``."""
    integer = int(np.ceil(value))
    return integer if integer % 2 == 1 else integer + 1


class STL(BatchDecomposer):
    """Batch STL decomposition.

    Parameters
    ----------
    period:
        Seasonal period length ``T``.
    seasonal_window:
        LOESS span for cycle-subseries smoothing, or the string
        ``"periodic"`` to force a strictly periodic seasonal component
        (each phase is the weighted mean of its subseries).
    trend_window:
        LOESS span of the trend smoother; defaults to the value recommended
        in the original paper, ``next_odd(1.5 * period / (1 - 1.5 / seasonal_window))``.
    low_pass_window:
        LOESS span of the low-pass filter; defaults to ``next_odd(period)``.
    inner_iterations / outer_iterations:
        Number of inner loop passes and robustness (outer) passes.
    """

    def __init__(
        self,
        period: int,
        seasonal_window: int | str = 11,
        trend_window: int | None = None,
        low_pass_window: int | None = None,
        inner_iterations: int = 2,
        outer_iterations: int = 1,
    ):
        self.period = check_period(period)
        if isinstance(seasonal_window, str):
            if seasonal_window != "periodic":
                raise ValueError("seasonal_window must be an integer or 'periodic'")
            self.seasonal_window: int | str = "periodic"
            effective_seasonal = 10 * self.period + 1
        else:
            self.seasonal_window = next_odd(check_positive_int(seasonal_window, "seasonal_window", 3))
            effective_seasonal = self.seasonal_window
        if trend_window is None:
            trend_window = next_odd(1.5 * self.period / (1 - 1.5 / effective_seasonal))
        self.trend_window = next_odd(check_positive_int(trend_window, "trend_window", 3))
        if low_pass_window is None:
            low_pass_window = next_odd(self.period)
        self.low_pass_window = next_odd(check_positive_int(low_pass_window, "low_pass_window", 3))
        self.inner_iterations = check_positive_int(inner_iterations, "inner_iterations")
        self.outer_iterations = check_positive_int(outer_iterations, "outer_iterations", minimum=0)

    # ------------------------------------------------------------------ API

    def decompose(self, values) -> DecompositionResult:
        values = as_float_array(values, "values", min_length=2 * self.period)
        n = values.size
        period = self.period

        trend = np.zeros(n)
        seasonal = np.zeros(n)
        robustness = np.ones(n)

        total_outer = max(1, self.outer_iterations)
        for outer in range(total_outer):
            for _ in range(self.inner_iterations):
                detrended = values - trend
                cycle = self._smooth_cycle_subseries(detrended, robustness)
                low_pass = self._low_pass(cycle)
                seasonal = cycle[period : period + n] - low_pass
                deseasonalized = values - seasonal
                trend = loess_smooth(
                    deseasonalized,
                    self.trend_window,
                    degree=1,
                    robustness_weights=robustness,
                )
            if outer < total_outer - 1 and self.outer_iterations > 0:
                robustness = self._robustness_weights(values - trend - seasonal)

        residual = values - trend - seasonal
        return DecompositionResult(
            observed=values,
            trend=trend,
            seasonal=seasonal,
            residual=residual,
            period=period,
        )

    # ------------------------------------------------------------- internals

    def _smooth_cycle_subseries(
        self, detrended: np.ndarray, robustness: np.ndarray
    ) -> np.ndarray:
        """Smooth each cycle-subseries and extend one period on each side."""
        n = detrended.size
        period = self.period
        extended = np.zeros(n + 2 * period)
        filled = np.zeros(n + 2 * period, dtype=bool)
        for phase in range(period):
            subseries = detrended[phase::period]
            sub_robustness = robustness[phase::period]
            if self.seasonal_window == "periodic":
                weight_total = sub_robustness.sum()
                if weight_total <= 0:
                    smoothed_value = float(subseries.mean())
                else:
                    smoothed_value = float(
                        np.dot(sub_robustness, subseries) / weight_total
                    )
                smoothed = np.full(subseries.size, smoothed_value)
            else:
                smoothed = loess_smooth(
                    subseries,
                    self.seasonal_window,
                    degree=1,
                    robustness_weights=sub_robustness,
                )
            positions = phase + period + np.arange(subseries.size) * period
            extended[positions] = smoothed
            filled[positions] = True
            extended[phase] = smoothed[0]
            filled[phase] = True
            tail_position = phase + period + subseries.size * period
            if tail_position < extended.size:
                extended[tail_position] = smoothed[-1]
                filled[tail_position] = True
        # Any extension slot that was not filled (when the series length is
        # not a multiple of the period) repeats the value one period earlier.
        for index in range(n + period, n + 2 * period):
            if not filled[index]:
                extended[index] = extended[index - period]
        return extended

    def _low_pass(self, cycle: np.ndarray) -> np.ndarray:
        """Low-pass filter: two MA(T), one MA(3), then a LOESS pass."""
        period = self.period
        first = moving_average(cycle, period)
        second = moving_average(first, period)
        third = moving_average(second, 3)
        smoothed = loess_smooth(third, self.low_pass_window, degree=1)
        return smoothed

    @staticmethod
    def _robustness_weights(residual: np.ndarray) -> np.ndarray:
        """Bisquare robustness weights from the residuals."""
        scale = 6.0 * np.median(np.abs(residual))
        if scale <= 0:
            return np.ones_like(residual)
        u = np.clip(np.abs(residual) / scale, 0.0, 1.0)
        return (1.0 - u ** 2) ** 2
