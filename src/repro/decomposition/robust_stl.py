"""RobustSTL (Wen et al. 2018) -- robust batch seasonal-trend decomposition.

RobustSTL is the strongest batch baseline in the paper (Table 2 and
Figures 5/6): it handles abrupt trend changes and seasonality shifts by
combining

1. **bilateral denoising** of the raw series,
2. **robust trend extraction** on the seasonally differenced series: the
   trend is the solution of a least-absolute-deviation regression with l1
   penalties on its first and second differences, which preserves sharp
   level shifts, and
3. **non-local seasonal filtering**: each point's seasonal value is a
   similarity-weighted average of detrended values at the same phase in
   neighbouring periods, which adapts to slowly changing seasonal shapes.

Documented substitution: the original implementation solves the trend LAD
step with ADMM; this reproduction uses IRLS (iteratively reweighted least
squares) on the same objective, solved with sparse factorizations.  IRLS
converges to the same optimum for these convex objectives and keeps the
dependency footprint to numpy/scipy.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.decomposition.base import BatchDecomposer, DecompositionResult
from repro.utils import as_float_array, check_period, check_positive, check_positive_int

__all__ = ["RobustSTL", "bilateral_filter"]


def bilateral_filter(
    values: np.ndarray,
    window: int = 5,
    sigma_time: float = 2.0,
    sigma_value: float | None = None,
) -> np.ndarray:
    """Edge-preserving bilateral smoothing of a 1-D series.

    Each output value is a weighted average of its neighbours where the
    weights decay both with temporal distance and with value dissimilarity,
    so spikes and level shifts are not smeared.
    """
    values = as_float_array(values, "values")
    window = check_positive_int(window, "window")
    sigma_time = check_positive(sigma_time, "sigma_time")
    if sigma_value is None:
        scale = np.std(values)
        sigma_value = float(scale) if scale > 0 else 1.0
    sigma_value = check_positive(sigma_value, "sigma_value")

    n = values.size
    smoothed = np.empty(n)
    offsets = np.arange(-window, window + 1)
    time_weights = np.exp(-0.5 * (offsets / sigma_time) ** 2)
    for index in range(n):
        start = max(0, index - window)
        stop = min(n, index + window + 1)
        neighbourhood = values[start:stop]
        local_time = time_weights[start - index + window : stop - index + window]
        value_weights = np.exp(
            -0.5 * ((neighbourhood - values[index]) / sigma_value) ** 2
        )
        weights = local_time * value_weights
        smoothed[index] = np.dot(weights, neighbourhood) / weights.sum()
    return smoothed


class RobustSTL(BatchDecomposer):
    """Robust batch decomposition with l1 trend extraction.

    Parameters
    ----------
    period:
        Seasonal period length ``T``.
    trend_smoothness / trend_curvature:
        Weights of the l1 penalties on the first and second trend
        differences (``lambda_1`` and ``lambda_2`` in the original paper).
    denoise_window / denoise_sigma_time:
        Bilateral pre-filter parameters.
    seasonal_neighbours:
        Number of neighbouring periods considered by the non-local seasonal
        filter on each side.
    seasonal_bandwidth:
        Half width (in samples) of the phase neighbourhood within each
        considered period.
    seasonal_sigma:
        Value-similarity scale of the non-local filter; defaults to the
        standard deviation of the detrended series.
    iterations:
        IRLS iterations of the trend step.
    """

    def __init__(
        self,
        period: int,
        trend_smoothness: float = 1.0,
        trend_curvature: float = 0.5,
        denoise_window: int = 3,
        denoise_sigma_time: float = 2.0,
        seasonal_neighbours: int = 2,
        seasonal_bandwidth: int = 2,
        seasonal_sigma: float | None = None,
        iterations: int = 8,
        epsilon: float = 1e-6,
    ):
        self.period = check_period(period)
        self.trend_smoothness = check_positive(trend_smoothness, "trend_smoothness")
        self.trend_curvature = check_positive(trend_curvature, "trend_curvature")
        self.denoise_window = check_positive_int(denoise_window, "denoise_window")
        self.denoise_sigma_time = check_positive(denoise_sigma_time, "denoise_sigma_time")
        self.seasonal_neighbours = check_positive_int(
            seasonal_neighbours, "seasonal_neighbours"
        )
        self.seasonal_bandwidth = check_positive_int(
            seasonal_bandwidth, "seasonal_bandwidth", minimum=0
        )
        self.seasonal_sigma = seasonal_sigma
        self.iterations = check_positive_int(iterations, "iterations")
        self.epsilon = check_positive(epsilon, "epsilon")

    # ------------------------------------------------------------------ API

    def decompose(self, values) -> DecompositionResult:
        values = as_float_array(values, "values", min_length=2 * self.period)
        denoised = bilateral_filter(
            values, window=self.denoise_window, sigma_time=self.denoise_sigma_time
        )
        trend = self._extract_trend(denoised)
        detrended = values - trend
        seasonal = self._nonlocal_seasonal(detrended)
        # Remove the per-period mean from the seasonal component so that the
        # level stays in the trend (the original paper imposes the same
        # normalization as a constraint).
        adjustment = seasonal.mean()
        seasonal = seasonal - adjustment
        trend = trend + adjustment
        residual = values - trend - seasonal
        return DecompositionResult(
            observed=values,
            trend=trend,
            seasonal=seasonal,
            residual=residual,
            period=self.period,
        )

    # ------------------------------------------------------------- internals

    def _extract_trend(self, denoised: np.ndarray) -> np.ndarray:
        """Robust trend via LAD regression on the seasonal difference.

        Minimizes (over the trend ``tau``)

            sum_t |d_t - (tau_t - tau_{t-T})|
            + lambda_1 * sum_t |tau_t - tau_{t-1}|
            + lambda_2 * sum_t |tau_t - 2 tau_{t-1} + tau_{t-2}|

        where ``d_t = y~_t - y~_{t-T}`` is the seasonally differenced,
        denoised series.  The seasonal component cancels from ``d`` (up to
        its slow variation), so the fit term sees only the trend change
        across one period and sharp trend breaks are preserved.
        """
        n = denoised.size
        period = self.period
        seasonal_difference = denoised[period:] - denoised[:-period]

        rows = np.arange(n - period)
        fit_matrix = sparse.csr_matrix(
            (
                np.concatenate([np.ones(n - period), -np.ones(n - period)]),
                (np.concatenate([rows, rows]), np.concatenate([rows + period, rows])),
            ),
            shape=(n - period, n),
        )
        rows = np.arange(n - 1)
        first_diff = sparse.csr_matrix(
            (
                np.concatenate([np.ones(n - 1), -np.ones(n - 1)]),
                (np.concatenate([rows, rows]), np.concatenate([rows + 1, rows])),
            ),
            shape=(n - 1, n),
        )
        rows = np.arange(n - 2)
        second_diff = sparse.csr_matrix(
            (
                np.concatenate([np.ones(n - 2), -2.0 * np.ones(n - 2), np.ones(n - 2)]),
                (
                    np.concatenate([rows, rows, rows]),
                    np.concatenate([rows + 2, rows + 1, rows]),
                ),
            ),
            shape=(n - 2, n),
        )
        # Anchor the overall level: the trend mean should match the series
        # mean over the first period (the constant is otherwise free).
        anchor = sparse.csr_matrix(
            (np.full(period, 1.0 / period), (np.zeros(period, dtype=int), np.arange(period))),
            shape=(1, n),
        )
        anchor_target = np.array([denoised[:period].mean()])

        trend = np.full(n, denoised.mean())
        for _ in range(self.iterations):
            fit_residual = seasonal_difference - fit_matrix @ trend
            fit_weights = 0.5 / np.maximum(np.abs(fit_residual), self.epsilon)
            first_weights = 0.5 / np.maximum(np.abs(first_diff @ trend), self.epsilon)
            second_weights = 0.5 / np.maximum(np.abs(second_diff @ trend), self.epsilon)
            system = (
                fit_matrix.T @ sparse.diags(fit_weights) @ fit_matrix
                + self.trend_smoothness
                * (first_diff.T @ sparse.diags(first_weights) @ first_diff)
                + self.trend_curvature
                * (second_diff.T @ sparse.diags(second_weights) @ second_diff)
                + anchor.T @ anchor
            )
            rhs = (
                fit_matrix.T @ (fit_weights * seasonal_difference)
                + anchor.T @ anchor_target
            )
            trend = splu(system.tocsc()).solve(np.asarray(rhs).ravel())
        return trend

    def _nonlocal_seasonal(self, detrended: np.ndarray) -> np.ndarray:
        """Non-local seasonal filtering of the detrended series."""
        n = detrended.size
        period = self.period
        sigma = self.seasonal_sigma
        if sigma is None:
            scale = np.std(detrended)
            sigma = float(scale) if scale > 0 else 1.0
        seasonal = np.empty(n)
        for index in range(n):
            positions = []
            for cycle in range(1, self.seasonal_neighbours + 1):
                for direction in (-1, 1):
                    center = index + direction * cycle * period
                    for offset in range(-self.seasonal_bandwidth, self.seasonal_bandwidth + 1):
                        position = center + offset
                        if 0 <= position < n:
                            positions.append(position)
            if not positions:
                seasonal[index] = detrended[index]
                continue
            positions = np.asarray(positions)
            neighbours = detrended[positions]
            weights = np.exp(-0.5 * ((neighbours - detrended[index]) / sigma) ** 2)
            total = weights.sum()
            if total <= 0:
                seasonal[index] = detrended[index]
            else:
                seasonal[index] = np.dot(weights, neighbours) / total
        return seasonal
