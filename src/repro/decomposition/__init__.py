"""Seasonal-trend decomposition baselines and shared interfaces.

Batch methods
-------------
:class:`STL`
    Classic LOESS-based decomposition (Cleveland et al. 1990).
:class:`RobustSTL`
    Robust decomposition with l1 trend extraction and non-local seasonal
    filtering (Wen et al. 2018).
:func:`l1_trend_filter`
    Stand-alone piecewise-linear trend estimation.

Online methods
--------------
:class:`OnlineSTL`
    Tricube trend + exponential seasonal smoothing, O(T) per point
    (Mishra et al. 2022).
:class:`WindowSTL` / :class:`WindowRobustSTL` / :class:`OnlineRobustSTL`
    Sliding-window adapters around the batch methods.

The paper's own methods (:class:`repro.core.JointSTL` and
:class:`repro.core.OneShotSTL`) live in :mod:`repro.core` and implement the
same interfaces.
"""

from repro.decomposition.base import (
    BatchDecomposer,
    DecompositionPoint,
    DecompositionResult,
    OnlineDecomposer,
)
from repro.decomposition.l1_trend import l1_trend_filter
from repro.decomposition.loess import loess_smooth, moving_average, tricube_weights
from repro.decomposition.online_stl import OnlineSTL
from repro.decomposition.robust_stl import RobustSTL, bilateral_filter
from repro.decomposition.stl import STL
from repro.decomposition.windowed import (
    OnlineRobustSTL,
    WindowRobustSTL,
    WindowSTL,
    WindowedDecomposer,
)

__all__ = [
    "BatchDecomposer",
    "DecompositionPoint",
    "DecompositionResult",
    "OnlineDecomposer",
    "STL",
    "RobustSTL",
    "OnlineSTL",
    "OnlineRobustSTL",
    "WindowSTL",
    "WindowRobustSTL",
    "WindowedDecomposer",
    "bilateral_filter",
    "l1_trend_filter",
    "loess_smooth",
    "moving_average",
    "tricube_weights",
]
