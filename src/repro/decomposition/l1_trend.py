"""l1 trend filtering (Kim, Koh, Boyd, Gorinevsky 2009).

The l1 trend filter estimates a piecewise-linear trend by solving

    min_tau  loss(y - tau) + lam * sum_t |tau_t - 2 tau_{t-1} + tau_{t-2}|

where ``loss`` is either the squared l2 norm (classic formulation) or the
robust l1 norm (used inside RobustSTL).  Both the loss and the penalty are
handled with IRLS, turning every iteration into one sparse symmetric solve.

The JointSTL model of the paper is an extension of this filter with a
jointly estimated seasonal component; this standalone version is used by
the RobustSTL baseline and is exposed publicly because it is broadly
useful on its own.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.utils import as_float_array, check_positive, check_positive_int

__all__ = ["l1_trend_filter"]


def _second_difference_matrix(n: int) -> sparse.csr_matrix:
    rows = np.arange(n - 2)
    data = np.concatenate([np.ones(n - 2), -2.0 * np.ones(n - 2), np.ones(n - 2)])
    columns = np.concatenate([rows, rows + 1, rows + 2])
    return sparse.csr_matrix(
        (data, (np.concatenate([rows, rows, rows]), columns)), shape=(n - 2, n)
    )


def l1_trend_filter(
    values,
    smoothness: float,
    iterations: int = 10,
    loss: str = "l2",
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate a piecewise-linear trend with the l1 trend filter.

    Parameters
    ----------
    values:
        Input series.
    smoothness:
        Penalty weight ``lam``; larger values produce fewer trend knots.
    iterations:
        Number of IRLS iterations.
    loss:
        ``"l2"`` for the classic squared loss or ``"l1"`` for the robust
        absolute loss (resistant to spike outliers).
    epsilon:
        Numerical floor used in the IRLS weight updates.

    Returns
    -------
    numpy.ndarray
        The estimated trend, same length as the input.
    """
    values = as_float_array(values, "values", min_length=3)
    smoothness = check_positive(smoothness, "smoothness")
    iterations = check_positive_int(iterations, "iterations")
    if loss not in ("l1", "l2"):
        raise ValueError("loss must be 'l1' or 'l2'")
    epsilon = check_positive(epsilon, "epsilon")

    n = values.size
    second_diff = _second_difference_matrix(n)
    identity = sparse.identity(n, format="csr")

    trend = values.copy()
    for _ in range(iterations):
        penalty_weights = 0.5 / np.maximum(np.abs(second_diff @ trend), epsilon)
        if loss == "l2":
            loss_matrix = identity
            rhs = values
        else:
            loss_weights = 0.5 / np.maximum(np.abs(values - trend), epsilon)
            loss_matrix = sparse.diags(loss_weights)
            rhs = loss_weights * values
        system = loss_matrix + smoothness * (
            second_diff.T @ sparse.diags(penalty_weights) @ second_diff
        )
        trend = splu(system.tocsc()).solve(np.asarray(rhs, dtype=float))
    return trend
