"""OnlineSTL (Mishra, Sriharsha, Zhong -- VLDB 2022).

OnlineSTL was the first online seasonal-trend decomposition algorithm and
is the main speed baseline of the paper.  It alternates two lightweight
filters per arriving point:

* a **tricube-weighted trend filter** over a sliding window of
  deseasonalized values (most weight on the most recent points), and
* **per-phase exponential smoothing** of the detrended value to update the
  seasonal component: ``s <- alpha * (y - trend) + (1 - alpha) * s_prev``.

Its per-point cost is ``O(T)`` because the trend window scales with the
period, which is exactly the scaling the paper's Figure 7 contrasts with
OneShotSTL's O(1) update.
"""

from __future__ import annotations

import numpy as np

from repro.decomposition.base import (
    DecompositionPoint,
    DecompositionResult,
    OnlineDecomposer,
)
from repro.decomposition.loess import tricube_weights
from repro.decomposition.stl import STL
from repro.registry import register_decomposer
from repro.utils import as_float_array, check_period, check_positive, check_probability

__all__ = ["OnlineSTL"]


@register_decomposer("online_stl")
class OnlineSTL(OnlineDecomposer):
    """Online decomposition with tricube trend and exponential seasonal filters.

    Parameters
    ----------
    period:
        Seasonal period length ``T``.
    smoothing:
        Exponential smoothing factor ``alpha`` of the seasonal filter
        (the paper's experiments use 0.7).
    trend_window:
        Length of the sliding trend window; defaults to ``period + 1`` so the
        trend filter always spans one full season.
    initializer:
        Batch decomposer used on the initialization prefix (periodic STL by
        default).
    """

    def __init__(
        self,
        period: int,
        smoothing: float = 0.7,
        trend_window: int | None = None,
        initializer=None,
    ):
        self.period = check_period(period)
        self.smoothing = check_probability(smoothing, "smoothing")
        if self.smoothing == 0.0:
            raise ValueError("smoothing must be strictly positive")
        if trend_window is None:
            trend_window = self.period + 1
        self.trend_window = int(check_positive(trend_window, "trend_window"))
        self._initializer = initializer
        self._initialized = False

    def get_params(self) -> dict:
        """Primitive constructor parameters (see :mod:`repro.specs`)."""
        if self._initializer is not None:
            raise ValueError(
                "an OnlineSTL with a custom initializer object cannot be "
                "described by primitive spec parameters"
            )
        return {
            "period": self.period,
            "smoothing": self.smoothing,
            "trend_window": self.trend_window,
        }

    # ------------------------------------------------------------------ API

    def initialize(self, values) -> DecompositionResult:
        values = as_float_array(values, "values", min_length=2 * self.period)
        initializer = self._initializer or STL(self.period, seasonal_window="periodic")
        result = initializer.decompose(values)

        self._seasonal_buffer = np.zeros(self.period)
        for index in range(values.size):
            self._seasonal_buffer[index % self.period] = result.seasonal[index]
        deseasonalized = values - result.seasonal
        window = min(self.trend_window, values.size)
        self._trend_history = list(deseasonalized[-window:])
        offsets = np.arange(self.trend_window, dtype=float)
        self._trend_weights = tricube_weights(
            (self.trend_window - 1 - offsets) / self.trend_window
        )
        self._global_index = values.size
        self._initialized = True
        return result

    def update(self, value: float) -> DecompositionPoint:
        if not self._initialized:
            raise RuntimeError("initialize() must be called before update()")
        value = float(value)
        phase = self._global_index % self.period

        deseasonalized = value - self._seasonal_buffer[phase]
        self._trend_history.append(deseasonalized)
        if len(self._trend_history) > self.trend_window:
            self._trend_history.pop(0)
        history = np.asarray(self._trend_history)
        weights = self._trend_weights[-history.size :]
        trend = float(np.dot(weights, history) / weights.sum())

        detrended = value - trend
        seasonal = (
            self.smoothing * detrended
            + (1.0 - self.smoothing) * self._seasonal_buffer[phase]
        )
        self._seasonal_buffer[phase] = seasonal
        residual = value - trend - seasonal
        self._global_index += 1
        self._last_trend = trend
        return DecompositionPoint(
            value=value, trend=trend, seasonal=float(seasonal), residual=float(residual)
        )

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast by periodic continuation (same rule as OneShotSTL)."""
        if not self._initialized:
            raise RuntimeError("initialize() must be called before forecast()")
        horizon = int(check_positive(horizon, "horizon"))
        predictions = np.empty(horizon)
        last_trend = getattr(self, "_last_trend", float(np.mean(self._trend_history)))
        for step in range(horizon):
            phase = (self._global_index + step) % self.period
            predictions[step] = last_trend + self._seasonal_buffer[phase]
        return predictions
