"""Sliding-window adapters that turn batch decomposers into online ones.

The paper's Window-STL and Window-RobustSTL baselines (Table 2) re-run a
batch method on a sliding window of the most recent ``W = 4 T`` points for
every arriving observation and report the decomposition of the newest
point.  Their per-point cost is therefore the full batch cost on ``W``
points, which is what makes them orders of magnitude slower than the truly
online methods in Figure 7.

``recompute_stride`` allows the expensive batch call to be amortized over a
few points (the in-between points reuse the latest fitted seasonal phase
value and local trend); the stride defaults to 1, i.e. the faithful -- and
slow -- behaviour.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.decomposition.base import (
    BatchDecomposer,
    DecompositionPoint,
    DecompositionResult,
    OnlineDecomposer,
)
from repro.decomposition.robust_stl import RobustSTL
from repro.decomposition.stl import STL
from repro.registry import register_decomposer
from repro.utils import as_float_array, check_period, check_positive_int

__all__ = ["WindowedDecomposer", "WindowSTL", "WindowRobustSTL", "OnlineRobustSTL"]


class WindowedDecomposer(OnlineDecomposer):
    """Run a batch decomposer on a sliding window for every new point.

    Parameters
    ----------
    batch_decomposer:
        Any :class:`~repro.decomposition.base.BatchDecomposer`.
    window_periods:
        Window length expressed in seasonal periods (the paper uses 4).
    recompute_stride:
        Re-run the batch decomposition every this many points (1 = every
        point).
    """

    def __init__(
        self,
        batch_decomposer: BatchDecomposer,
        window_periods: int = 4,
        recompute_stride: int = 1,
    ):
        self.period = check_period(batch_decomposer.period)
        self.batch_decomposer = batch_decomposer
        self.window_periods = check_positive_int(window_periods, "window_periods", 2)
        self.recompute_stride = check_positive_int(recompute_stride, "recompute_stride")
        self.window_length = self.window_periods * self.period
        self._initialized = False

    def get_params(self) -> dict:
        """Primitive constructor parameters (see :mod:`repro.specs`).

        Meaningful on the registered subclasses, which construct their own
        batch decomposer and record its extra keyword arguments in
        ``_extra_params``; the base adapter (built around an arbitrary
        batch decomposer object) is not spec-expressible and has no
        ``_extra_params``.
        """
        return {
            "period": self.period,
            "window_periods": self.window_periods,
            "recompute_stride": self.recompute_stride,
            **getattr(self, "_extra_params", {}),
        }

    def initialize(self, values) -> DecompositionResult:
        values = as_float_array(values, "values", min_length=2 * self.period)
        result = self.batch_decomposer.decompose(values)
        self._window = deque(values[-self.window_length :], maxlen=self.window_length)
        self._since_recompute = 0
        self._latest = result
        self._global_index = values.size
        self._initialized = True
        return result

    def update(self, value: float) -> DecompositionPoint:
        if not self._initialized:
            raise RuntimeError("initialize() must be called before update()")
        value = float(value)
        self._window.append(value)
        self._since_recompute += 1
        recompute = (
            self._since_recompute >= self.recompute_stride
            or len(self._latest.observed) < self.window_length
        )
        if recompute:
            window_values = np.asarray(self._window, dtype=float)
            self._latest = self.batch_decomposer.decompose(window_values)
            self._since_recompute = 0
            trend = float(self._latest.trend[-1])
            seasonal = float(self._latest.seasonal[-1])
        else:
            # Between recomputes: reuse the latest trend level and the
            # seasonal value of the matching phase from the last fit.
            trend = float(self._latest.trend[-1])
            phase_offset = self._since_recompute % self.period
            seasonal_index = -self.period + phase_offset
            seasonal = float(self._latest.seasonal[seasonal_index])
        residual = value - trend - seasonal
        self._global_index += 1
        return DecompositionPoint(
            value=value, trend=trend, seasonal=seasonal, residual=residual
        )


@register_decomposer("window_stl")
class WindowSTL(WindowedDecomposer):
    """The paper's Window-STL baseline (batch STL on a 4-period sliding window)."""

    def __init__(self, period: int, window_periods: int = 4, recompute_stride: int = 1, **stl_kwargs):
        super().__init__(
            STL(period, **stl_kwargs),
            window_periods=window_periods,
            recompute_stride=recompute_stride,
        )
        self._extra_params = dict(stl_kwargs)


@register_decomposer("window_robust_stl")
class WindowRobustSTL(WindowedDecomposer):
    """The paper's Window-RobustSTL baseline."""

    def __init__(
        self, period: int, window_periods: int = 4, recompute_stride: int = 1, **robust_kwargs
    ):
        super().__init__(
            RobustSTL(period, **robust_kwargs),
            window_periods=window_periods,
            recompute_stride=recompute_stride,
        )
        self._extra_params = dict(robust_kwargs)


@register_decomposer("online_robust_stl")
class OnlineRobustSTL(WindowedDecomposer):
    """OnlineRobustSTL baseline (sliding-window FastRobustSTL, O(T) per point).

    The public SREWorks implementation referenced by the paper applies
    (Fast)RobustSTL to a sliding window and emits the newest point, which is
    what this adapter does.  A smaller default window (2 periods) mirrors
    the accelerated variant's reduced working set.
    """

    def __init__(
        self, period: int, window_periods: int = 2, recompute_stride: int = 1, **robust_kwargs
    ):
        super().__init__(
            RobustSTL(period, **robust_kwargs),
            window_periods=window_periods,
            recompute_stride=recompute_stride,
        )
        self._extra_params = dict(robust_kwargs)
