"""The paper's contribution: JointSTL and OneShotSTL.

Public classes
--------------
:class:`JointSTL`
    Batch joint seasonal-trend decomposition solved with IRLS (Algorithm 1).
:class:`ModifiedJointSTL`
    Exact online reference of the modified JointSTL problem (Algorithm 2);
    O(M) per point, used as a correctness oracle and executable spec.
:class:`OneShotSTL`
    The online O(1)-per-point decomposition (Algorithms 4 + 5), including the
    seasonality-shift handling of Section 3.4 and the forecasting extension
    of Section 4.
:class:`FleetKernel`
    Columnar (struct-of-arrays) form of ``n`` OneShotSTL instances sharing
    one configuration: the whole fleet advances with a handful of array
    operations per point, bit-identical to the scalar path.
:func:`select_lambda`
    The paper's training-window procedure for choosing ``lambda``.
"""

from repro.core.fleet import ColumnarNSigma, FleetKernel
from repro.core.joint_stl import JointSTL
from repro.core.lambda_selection import DEFAULT_LAMBDA_GRID, select_lambda
from repro.core.modified_joint_stl import ModifiedJointSTL
from repro.core.nsigma import NSigma, NSigmaVerdict
from repro.core.online_system import (
    HALF_BANDWIDTH,
    ContributionWorkspace,
    point_contributions,
)
from repro.core.oneshotstl import OneShotSTL

__all__ = [
    "ColumnarNSigma",
    "FleetKernel",
    "JointSTL",
    "ModifiedJointSTL",
    "NSigma",
    "NSigmaVerdict",
    "OneShotSTL",
    "select_lambda",
    "DEFAULT_LAMBDA_GRID",
    "HALF_BANDWIDTH",
    "ContributionWorkspace",
    "point_contributions",
]
