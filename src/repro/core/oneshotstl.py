"""OneShotSTL: online seasonal-trend decomposition with O(1) updates.

This module implements the paper's main contribution (Algorithm 5), built
on top of the incremental banded LDL^T solver (Algorithm 4) from
:mod:`repro.solvers.incremental_ldlt`:

* an **initialization phase** runs a batch decomposition (STL by default,
  batch JointSTL optionally) on a prefix of the stream and fills the
  seasonal buffer ``v`` with the latest period of the seasonal component;
* the **online phase** consumes one observation at a time.  For each of the
  ``I`` IRLS iterations it appends the new point's contributions to that
  iteration's growing banded system and reads back only the newest trend
  and seasonal values -- a constant amount of work per observation,
  independent of both the period length ``T`` and the number of points
  already processed;
* the optional **seasonality-shift handling** (Section 3.4) monitors the
  decomposed residual with a streaming NSigma detector and, when a point
  looks anomalous, retries the update with every phase shift in
  ``[-H, +H]``, keeping the shift that minimizes the absolute residual.

The online outputs match the exact Algorithm-2 reference
(:class:`repro.core.modified_joint_stl.ModifiedJointSTL`) to machine
precision, which is asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.nsigma import NSigma
from repro.core.online_system import HALF_BANDWIDTH, ContributionWorkspace
from repro.decomposition.base import (
    DecompositionPoint,
    DecompositionResult,
    OnlineDecomposer,
)
from repro.decomposition.stl import STL
from repro.registry import register_decomposer
from repro.solvers import IncrementalBandedLDLT
from repro.utils import as_float_array, check_period, check_positive, check_positive_int

__all__ = ["OneShotSTL"]


@dataclass(slots=True)
class _IterationState:
    """Per-IRLS-iteration online state (one incremental system per iteration)."""

    solver: IncrementalBandedLDLT
    previous_trend: float
    before_previous_trend: float

    def copy(self) -> "_IterationState":
        return _IterationState(
            solver=self.solver.copy(),
            previous_trend=self.previous_trend,
            before_previous_trend=self.before_previous_trend,
        )


def _advance_states(
    states: list[_IterationState],
    value: float,
    anchor: float,
    point_index: int,
    workspace: ContributionWorkspace,
    epsilon: float,
) -> tuple[float, float]:
    """Run the ``I`` IRLS iterations for one observation on ``states``.

    This is the model's update math detached from any particular
    :class:`OneShotSTL` instance: it consumes only the iteration states,
    the observation, the seasonal anchor and the IRLS hyper-parameters, so
    it is shared verbatim between the scalar model and the per-series
    fallback path of the columnar :class:`repro.core.fleet.FleetKernel`.
    """
    next_p, next_q = 1.0, 1.0
    trend_value = seasonal_value = 0.0
    for state in states:
        updates, rhs_new = workspace.fill(point_index, value, anchor, next_p, next_q)
        # The workspace emits the same statically valid banded pattern
        # for every point, so per-entry index validation is skipped.
        state.solver.extend(2, updates, rhs_new, check_indices=False)
        tail = state.solver.tail_solution(2)
        trend_value = float(tail[0])
        seasonal_value = float(tail[1])
        next_p = 0.5 / max(abs(trend_value - state.previous_trend), epsilon)
        next_q = 0.5 / max(
            abs(
                trend_value
                - 2.0 * state.previous_trend
                + state.before_previous_trend
            ),
            epsilon,
        )
        state.before_previous_trend = state.previous_trend
        state.previous_trend = trend_value
    return trend_value, seasonal_value


def _search_best_shift(
    states: list[_IterationState],
    value: float,
    seasonal_buffer: np.ndarray,
    global_index: int,
    period: int,
    shift_window: int,
    point_index: int,
    workspace: ContributionWorkspace,
    epsilon: float,
) -> tuple[list[_IterationState], float, float, int]:
    """Evaluate every candidate seasonality shift on *pre-advance* states.

    ``states`` must not yet contain the current point (the caller rolls
    back, or reads back a pre-extend snapshot); every candidate is
    evaluated on copies, so ``states`` is left untouched.  Candidate 0 runs
    first and deterministically reproduces the plain advance, so the
    strict-< comparison keeps the original tie-breaking: a non-zero shift
    is only chosen if it strictly reduces the absolute residual.

    Returns ``(chosen_states, trend, seasonal, chosen_shift)``.
    """
    best = None
    candidates = [0] + [
        candidate
        for candidate in range(-shift_window, shift_window + 1)
        if candidate != 0
    ]
    for candidate in candidates:
        trial_states = [state.copy() for state in states]
        anchor = float(seasonal_buffer[(global_index + candidate) % period])
        trial_trend, trial_seasonal = _advance_states(
            trial_states, value, anchor, point_index, workspace, epsilon
        )
        trial_residual = value - trial_trend - trial_seasonal
        if best is None or abs(trial_residual) < best[0]:
            best = (
                abs(trial_residual),
                trial_states,
                trial_trend,
                trial_seasonal,
                candidate,
            )
    _, chosen_states, trend_value, seasonal_value, chosen_shift = best
    return chosen_states, trend_value, seasonal_value, chosen_shift


@register_decomposer("oneshotstl")
class OneShotSTL(OnlineDecomposer):
    """Online seasonal-trend decomposition with O(1) update complexity.

    Parameters
    ----------
    period:
        Seasonal period length ``T`` (estimated on the initialization window,
        e.g. with :func:`repro.periodicity.find_length`).
    lambda1, lambda2:
        Trend smoothness hyper-parameters (the paper ties them,
        ``lambda1 = lambda2 = lambda``, and selects the value on the training
        window -- see :func:`repro.core.lambda_selection.select_lambda`).
    iterations:
        Number of IRLS iterations ``I`` (paper default 8; ``I = 1`` trades a
        little accuracy for speed, see Figure 10).
    shift_window:
        Maximum seasonality shift ``H`` searched when the residual looks
        anomalous (paper default 20; 0 disables the search).
    shift_threshold:
        NSigma threshold ``n`` that triggers the shift search (paper: 5).
    epsilon:
        Lower bound on trend differences in the IRLS weight update.
    initializer:
        Optional batch decomposer used for the initialization phase; defaults
        to periodic STL.  Pass ``JointSTL(period, ...)`` to initialize with
        the batch variant of the same model.
    """

    def __init__(
        self,
        period: int,
        lambda1: float = 1.0,
        lambda2: float = 1.0,
        iterations: int = 8,
        shift_window: int = 20,
        shift_threshold: float = 5.0,
        epsilon: float = 1e-6,
        initializer=None,
    ):
        self.period = check_period(period)
        self.lambda1 = check_positive(lambda1, "lambda1")
        self.lambda2 = check_positive(lambda2, "lambda2")
        self.iterations = check_positive_int(iterations, "iterations")
        self.shift_window = check_positive_int(shift_window, "shift_window", minimum=0)
        self.shift_threshold = check_positive(shift_threshold, "shift_threshold")
        self.epsilon = check_positive(epsilon, "epsilon")
        self._initializer = initializer
        self._initialized = False

    supports_missing = True

    def get_params(self) -> dict:
        """Primitive constructor parameters (see :mod:`repro.specs`)."""
        if self._initializer is not None:
            raise ValueError(
                "a OneShotSTL with a custom initializer object cannot be "
                "described by primitive spec parameters"
            )
        return {
            "period": self.period,
            "lambda1": self.lambda1,
            "lambda2": self.lambda2,
            "iterations": self.iterations,
            "shift_window": self.shift_window,
            "shift_threshold": self.shift_threshold,
            "epsilon": self.epsilon,
        }

    # ------------------------------------------------------------------ API

    @property
    def seasonal_buffer(self) -> np.ndarray:
        """Copy of the current one-period seasonal buffer ``v``."""
        self._require_initialized()
        return self._seasonal_buffer.copy()

    @property
    def current_shift(self) -> int:
        """Shift chosen by the most recent seasonality-shift search.

        The shift is a *per-point* correction: it is applied to the point
        that triggered the search and then absorbed into the seasonal buffer
        (Algorithm 5 writes ``v[t mod T] = s_t`` at the unshifted index), so
        it is not carried forward as persistent state.  This property simply
        reports the last non-trivial correction for introspection.
        """
        self._require_initialized()
        return self._last_applied_shift

    @property
    def last_trend(self) -> float:
        """Most recent decomposed trend value."""
        self._require_initialized()
        return self._last_trend

    @property
    def last_detection_residual(self) -> float:
        """Residual of the latest point *before* any seasonality-shift search.

        Downstream anomaly detectors should score this value rather than the
        (possibly shift-corrected) residual of the returned decomposition:
        a genuine spike must not be silently explained away as a seasonal
        shift (Section 3.4 uses the same pre-correction residual to trigger
        the search).
        """
        self._require_initialized()
        return self._last_detection_residual

    def initialize(self, values) -> DecompositionResult:
        """Run the batch initialization phase on a prefix of the stream.

        The prefix should cover at least two seasonal periods; the paper uses
        roughly four periods (``W = 4 T``) or the dataset's train split.
        """
        values = as_float_array(values, "values", min_length=2 * self.period)
        initializer = self._initializer or STL(self.period, seasonal_window="periodic")
        result = initializer.decompose(values)

        self._seasonal_buffer = np.zeros(self.period)
        for index in range(values.size):
            self._seasonal_buffer[index % self.period] = result.seasonal[index]
        self._global_index = values.size
        self._last_applied_shift = 0
        self._last_trend = float(result.trend[-1])
        self._last_detection_residual = float(result.residual[-1])
        self._residual_monitor = NSigma(self.shift_threshold)
        for residual_value in result.residual:
            self._residual_monitor.update(float(residual_value))

        self._iterations_state = [
            _IterationState(
                solver=IncrementalBandedLDLT(HALF_BANDWIDTH),
                previous_trend=float(result.trend[-1]),
                before_previous_trend=float(result.trend[-2]),
            )
            for _ in range(self.iterations)
        ]
        self._workspace = ContributionWorkspace(self.lambda1, self.lambda2)
        self._points_processed = 0
        self._initialized = True
        return result

    def update(self, value: float) -> DecompositionPoint:
        """Decompose one newly arrived observation in O(1) time.

        ``value`` may be NaN to indicate a missing observation (a gap in the
        stream).  Missing points are imputed with the model's own one-step
        forecast -- the latest trend plus the seasonal buffer value of the
        current phase -- and then processed normally, so the model's phase
        book-keeping stays aligned with wall-clock time.  The returned point
        carries the imputed value; its residual is *small* (the imputed
        value is the model's own forecast) but not exactly zero, because the
        IRLS solve still redistributes the imputed value between trend and
        seasonality together with the smoothness terms.  This addresses the
        "missing points" limitation called out in the paper's conclusion.
        """
        self._require_initialized()
        value = float(value)
        if not np.isfinite(value):
            value = float(
                self._last_trend
                + self._seasonal_buffer[self._global_index % self.period]
            )

        # Advance the real states directly.  Each solver keeps one O(1)
        # undo level internally, so no deep snapshot is needed up front;
        # the expensive state copies happen only on the rare points where
        # the shift search below actually triggers.
        states = self._iterations_state
        previous_trends = [
            (state.previous_trend, state.before_previous_trend) for state in states
        ]
        trend_value, seasonal_value = self._advance(states, value, 0)
        residual = value - trend_value - seasonal_value
        # The un-shifted residual is what the anomaly monitor sees: a genuine
        # anomaly (or a genuine seasonality shift) shows up here, before the
        # shift search tries to re-explain the point.
        self._last_detection_residual = residual
        chosen_shift = 0

        if self.shift_window > 0 and self._residual_monitor.score(residual).is_anomaly:
            # Restore the pre-point state, then evaluate every candidate
            # shift on copies (see _search_best_shift for the tie-breaking).
            for state, (previous, before_previous) in zip(states, previous_trends):
                state.solver.rollback()
                state.previous_trend = previous
                state.before_previous_trend = before_previous
            chosen_states, trend_value, seasonal_value, chosen_shift = (
                _search_best_shift(
                    states,
                    value,
                    self._seasonal_buffer,
                    self._global_index,
                    self.period,
                    self.shift_window,
                    self._points_processed,
                    self._workspace,
                    self.epsilon,
                )
            )
            self._iterations_state = chosen_states
            residual = value - trend_value - seasonal_value
            if chosen_shift != 0:
                self._last_applied_shift = chosen_shift

        # The monitor tracks the *detection* residual so that one corrected
        # point does not mask a persistent problem from the statistics.
        self._residual_monitor.update(self._last_detection_residual)
        # The seasonal estimate belongs to the phase it was matched against:
        # for a genuine shift this rewrites the correct (shifted) slot, for a
        # spurious trigger it perturbs a single slot only, because the shift
        # is not carried over to later points.
        buffer_position = (self._global_index + chosen_shift) % self.period
        self._seasonal_buffer[buffer_position] = seasonal_value
        self._global_index += 1
        self._points_processed += 1
        self._last_trend = trend_value
        return DecompositionPoint(
            value=value,
            trend=trend_value,
            seasonal=seasonal_value,
            residual=residual,
        )

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` values (paper Section 4).

        The prediction combines the latest decomposed trend with the
        periodic continuation of the seasonal buffer:
        ``y_hat(t + i) = trend(t) + v[(t + i) mod T]``.
        """
        self._require_initialized()
        horizon = check_positive_int(horizon, "horizon")
        predictions = np.empty(horizon)
        for step in range(horizon):
            position = (self._global_index + step) % self.period
            predictions[step] = self._last_trend + self._seasonal_buffer[position]
        return predictions

    # ------------------------------------------------------------- internals

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise RuntimeError("initialize() must be called before using the model")

    def _advance(
        self, states: list[_IterationState], value: float, shift: int
    ) -> tuple[float, float]:
        """Run the ``I`` IRLS iterations for one observation on ``states``."""
        anchor = float(
            self._seasonal_buffer[(self._global_index + shift) % self.period]
        )
        return _advance_states(
            states,
            value,
            anchor,
            self._points_processed,
            self._workspace,
            self.epsilon,
        )
