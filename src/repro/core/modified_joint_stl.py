"""Modified JointSTL for the online setting (paper Algorithm 2).

This is the *exact but slow* reference: at every online step it rebuilds the
full interleaved banded system of Eq. (8) -- whose size grows with the
number of online points processed -- factorizes it from scratch and outputs
the newest trend/seasonal estimate.  Its per-point cost is therefore O(M)
where ``M`` is the number of online points seen so far.

OneShotSTL (Algorithm 5) produces *exactly* the same outputs with O(1) work
per point; the test suite verifies the match to machine precision.  The
reference is retained because

* it is the ground truth for that equivalence test,
* it is a readable executable specification of the online model, and
* it is handy for debugging hyper-parameter behaviour on short series.
"""

from __future__ import annotations

import numpy as np

from repro.core.online_system import HALF_BANDWIDTH, point_contributions
from repro.decomposition.base import (
    DecompositionPoint,
    DecompositionResult,
    OnlineDecomposer,
)
from repro.decomposition.stl import STL
from repro.registry import register_decomposer
from repro.solvers import BandedLDLT
from repro.utils import as_float_array, check_period, check_positive, check_positive_int

__all__ = ["ModifiedJointSTL"]


@register_decomposer("modified_joint_stl")
class ModifiedJointSTL(OnlineDecomposer):
    """Exact online reference implementation of the modified JointSTL model.

    Parameters mirror :class:`repro.core.oneshotstl.OneShotSTL` (without the
    seasonality-shift handling, which is an orthogonal extension evaluated
    separately).
    """

    def __init__(
        self,
        period: int,
        lambda1: float = 1.0,
        lambda2: float = 1.0,
        iterations: int = 8,
        epsilon: float = 1e-6,
        initializer=None,
    ):
        self.period = check_period(period)
        self.lambda1 = check_positive(lambda1, "lambda1")
        self.lambda2 = check_positive(lambda2, "lambda2")
        self.iterations = check_positive_int(iterations, "iterations")
        self.epsilon = check_positive(epsilon, "epsilon")
        self._initializer = initializer
        self._initialized = False

    def get_params(self) -> dict:
        """Primitive constructor parameters (see :mod:`repro.specs`)."""
        if self._initializer is not None:
            raise ValueError(
                "a ModifiedJointSTL with a custom initializer object cannot "
                "be described by primitive spec parameters"
            )
        return {
            "period": self.period,
            "lambda1": self.lambda1,
            "lambda2": self.lambda2,
            "iterations": self.iterations,
            "epsilon": self.epsilon,
        }

    # ------------------------------------------------------------------ API

    def initialize(self, values) -> DecompositionResult:
        values = as_float_array(values, "values", min_length=2 * self.period)
        initializer = self._initializer or STL(self.period, seasonal_window="periodic")
        result = initializer.decompose(values)

        self._seasonal_buffer = np.zeros(self.period)
        for index in range(values.size):
            self._seasonal_buffer[index % self.period] = result.seasonal[index]
        self._global_index = values.size

        # Per online point: observation and the anchor value used on arrival.
        self._observations: list[float] = []
        self._anchors: list[float] = []
        # Per IRLS iteration: the difference-term weights of each point
        # (fixed once the point has been processed) and the trend values the
        # iteration output at the two previous points (used for Eq. (4)/(5)).
        self._point_weights = [[] for _ in range(self.iterations)]
        self._previous_trends = [
            (float(result.trend[-1]), float(result.trend[-2]))
            for _ in range(self.iterations)
        ]
        self._initialized = True
        return result

    def update(self, value: float) -> DecompositionPoint:
        if not self._initialized:
            raise RuntimeError("initialize() must be called before update()")
        value = float(value)
        anchor = float(self._seasonal_buffer[self._global_index % self.period])
        self._observations.append(value)
        self._anchors.append(anchor)

        window_size = len(self._observations)
        next_p, next_q = 1.0, 1.0
        trend_value = seasonal_value = 0.0
        for iteration in range(self.iterations):
            self._point_weights[iteration].append((next_p, next_q))
            trend_value, seasonal_value = self._solve_iteration(iteration, window_size)
            previous, before_previous = self._previous_trends[iteration]
            next_p = 0.5 / max(abs(trend_value - previous), self.epsilon)
            next_q = 0.5 / max(
                abs(trend_value - 2.0 * previous + before_previous), self.epsilon
            )
            self._previous_trends[iteration] = (trend_value, previous)

        residual = value - trend_value - seasonal_value
        self._seasonal_buffer[self._global_index % self.period] = seasonal_value
        self._global_index += 1
        return DecompositionPoint(
            value=value,
            trend=trend_value,
            seasonal=seasonal_value,
            residual=residual,
        )

    # ------------------------------------------------------------- internals

    def _solve_iteration(self, iteration: int, window_size: int) -> tuple[float, float]:
        """Rebuild and solve the full system of one IRLS iteration."""
        size = 2 * window_size
        matrix = np.zeros((size, size))
        rhs = np.zeros(size)
        for point_index in range(window_size):
            p_weight, q_weight = self._point_weights[iteration][point_index]
            updates, rhs_new = point_contributions(
                point_index,
                self._observations[point_index],
                self._anchors[point_index],
                self.lambda1,
                self.lambda2,
                p_weight,
                q_weight,
            )
            for row, column, entry in updates:
                matrix[row, column] += entry
                if row != column:
                    matrix[column, row] += entry
            rhs[2 * point_index] = rhs_new[0]
            rhs[2 * point_index + 1] = rhs_new[1]
        solver = BandedLDLT.from_dense(matrix, HALF_BANDWIDTH)
        solution = solver.solve(rhs)
        return float(solution[-2]), float(solution[-1])
