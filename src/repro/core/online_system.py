"""Construction of the online (modified) JointSTL linear system.

The modified JointSTL problem (paper Problem (7) / Eq. (8)) is a least
squares problem over the interleaved variable vector

    x = [tau_1, s_1, tau_2, s_2, ..., tau_M, s_M]

covering the ``M`` points seen so far in the online phase.  Its normal
equations ``A x = b`` form a symmetric positive-definite banded system with
half bandwidth 4.  Each newly arrived point adds four kinds of terms:

* the fit term            ``(tau_j + s_j - y_j)^2``,
* the seasonal anchor     ``(s_j - v_{j mod T})^2``,
* the first-difference    ``lambda_1 * p_j * (tau_j - tau_{j-1})^2`` and
* the second-difference   ``lambda_2 * q_j * (tau_j - 2 tau_{j-1} + tau_{j-2})^2``

(the last two only once enough points are in the window).  Crucially these
terms touch only the newest variables and the trailing four indices of the
previous system, which is what allows the O(1) incremental factorization.

:func:`point_contributions` returns the coefficient updates and new
right-hand-side entries of one point.  Both the exact Algorithm-2 reference
(:class:`repro.core.modified_joint_stl.ModifiedJointSTL`) and the O(1)
OneShotSTL implementation consume the *same* contributions, which is what
makes the "OneShotSTL equals the reference to machine precision" test
meaningful.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["HALF_BANDWIDTH", "point_contributions"]

#: Half bandwidth of the interleaved online system (paper: banded matrix of
#: total bandwidth 9).
HALF_BANDWIDTH = 4


def point_contributions(
    point_index: int,
    value: float,
    anchor: float,
    lambda1: float,
    lambda2: float,
    p_weight: float,
    q_weight: float,
) -> Tuple[List[Tuple[int, int, float]], List[float]]:
    """Return the system contributions of the ``point_index``-th online point.

    Parameters
    ----------
    point_index:
        Zero-based position of the point within the online window.
    value:
        The observation ``y_j``.
    anchor:
        The seasonal buffer value ``v_{j mod T}`` (possibly shift-corrected)
        that anchors the new seasonal variable.
    lambda1, lambda2:
        Trend smoothness hyper-parameters.
    p_weight, q_weight:
        IRLS weights of the first/second trend-difference terms introduced by
        this point (1.0 in the first IRLS iteration).

    Returns
    -------
    (updates, rhs_new):
        ``updates`` is a list of ``(row, column, value)`` additions to the
        symmetric matrix ``A`` using absolute variable indices, and
        ``rhs_new`` the two right-hand-side entries of the appended trend and
        seasonal variables.
    """
    if point_index < 0:
        raise ValueError("point_index must be non-negative")
    trend_index = 2 * point_index
    seasonal_index = trend_index + 1

    updates: List[Tuple[int, int, float]] = [
        # Fit term (tau + s - y)^2 ...
        (trend_index, trend_index, 1.0),
        (seasonal_index, seasonal_index, 1.0),
        (seasonal_index, trend_index, 1.0),
        # ... plus the seasonal anchor term (s - v)^2.
        (seasonal_index, seasonal_index, 1.0),
    ]
    rhs_new = [float(value), float(value) + float(anchor)]

    if point_index >= 1:
        previous_trend = trend_index - 2
        weight = float(lambda1) * float(p_weight)
        updates.extend(
            [
                (trend_index, trend_index, weight),
                (previous_trend, previous_trend, weight),
                (trend_index, previous_trend, -weight),
            ]
        )
    if point_index >= 2:
        previous_trend = trend_index - 2
        before_previous = trend_index - 4
        weight = float(lambda2) * float(q_weight)
        updates.extend(
            [
                (trend_index, trend_index, weight),
                (previous_trend, previous_trend, 4.0 * weight),
                (before_previous, before_previous, weight),
                (trend_index, previous_trend, -2.0 * weight),
                (trend_index, before_previous, weight),
                (previous_trend, before_previous, -2.0 * weight),
            ]
        )
    return updates, rhs_new
