"""Construction of the online (modified) JointSTL linear system.

The modified JointSTL problem (paper Problem (7) / Eq. (8)) is a least
squares problem over the interleaved variable vector

    x = [tau_1, s_1, tau_2, s_2, ..., tau_M, s_M]

covering the ``M`` points seen so far in the online phase.  Its normal
equations ``A x = b`` form a symmetric positive-definite banded system with
half bandwidth 4.  Each newly arrived point adds four kinds of terms:

* the fit term            ``(tau_j + s_j - y_j)^2``,
* the seasonal anchor     ``(s_j - v_{j mod T})^2``,
* the first-difference    ``lambda_1 * p_j * (tau_j - tau_{j-1})^2`` and
* the second-difference   ``lambda_2 * q_j * (tau_j - 2 tau_{j-1} + tau_{j-2})^2``

(the last two only once enough points are in the window).  Crucially these
terms touch only the newest variables and the trailing four indices of the
previous system, which is what allows the O(1) incremental factorization.

:func:`point_contributions` returns the coefficient updates and new
right-hand-side entries of one point as a plain list of triples -- the
readable reference form consumed by the exact Algorithm-2 implementation
(:class:`repro.core.modified_joint_stl.ModifiedJointSTL`).
:class:`ContributionWorkspace` produces the *same* contributions, but
writes them into preallocated NumPy arrays so that the per-point hot path
of OneShotSTL allocates no tuple lists; the test suite asserts the two
forms agree entry for entry, which is what keeps the "OneShotSTL equals
the reference to machine precision" test meaningful.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["HALF_BANDWIDTH", "ContributionWorkspace", "point_contributions"]

#: Half bandwidth of the interleaved online system (paper: banded matrix of
#: total bandwidth 9).
HALF_BANDWIDTH = 4


def point_contributions(
    point_index: int,
    value: float,
    anchor: float,
    lambda1: float,
    lambda2: float,
    p_weight: float,
    q_weight: float,
) -> Tuple[List[Tuple[int, int, float]], List[float]]:
    """Return the system contributions of the ``point_index``-th online point.

    Parameters
    ----------
    point_index:
        Zero-based position of the point within the online window.
    value:
        The observation ``y_j``.
    anchor:
        The seasonal buffer value ``v_{j mod T}`` (possibly shift-corrected)
        that anchors the new seasonal variable.
    lambda1, lambda2:
        Trend smoothness hyper-parameters.
    p_weight, q_weight:
        IRLS weights of the first/second trend-difference terms introduced by
        this point (1.0 in the first IRLS iteration).

    Returns
    -------
    (updates, rhs_new):
        ``updates`` is a list of ``(row, column, value)`` additions to the
        symmetric matrix ``A`` using absolute variable indices, and
        ``rhs_new`` the two right-hand-side entries of the appended trend and
        seasonal variables.
    """
    if point_index < 0:
        raise ValueError("point_index must be non-negative")
    trend_index = 2 * point_index
    seasonal_index = trend_index + 1

    updates: List[Tuple[int, int, float]] = [
        # Fit term (tau + s - y)^2 ...
        (trend_index, trend_index, 1.0),
        (seasonal_index, seasonal_index, 1.0),
        (seasonal_index, trend_index, 1.0),
        # ... plus the seasonal anchor term (s - v)^2.
        (seasonal_index, seasonal_index, 1.0),
    ]
    rhs_new = [float(value), float(value) + float(anchor)]

    if point_index >= 1:
        previous_trend = trend_index - 2
        weight = float(lambda1) * float(p_weight)
        updates.extend(
            [
                (trend_index, trend_index, weight),
                (previous_trend, previous_trend, weight),
                (trend_index, previous_trend, -weight),
            ]
        )
    if point_index >= 2:
        previous_trend = trend_index - 2
        before_previous = trend_index - 4
        weight = float(lambda2) * float(q_weight)
        updates.extend(
            [
                (trend_index, trend_index, weight),
                (previous_trend, previous_trend, 4.0 * weight),
                (before_previous, before_previous, weight),
                (trend_index, previous_trend, -2.0 * weight),
                (trend_index, before_previous, weight),
                (previous_trend, before_previous, -2.0 * weight),
            ]
        )
    return updates, rhs_new


class ContributionWorkspace:
    """Allocation-free array form of :func:`point_contributions`.

    Once the online window holds at least three points, every new point adds
    the same 13-entry pattern of coefficient updates whose positions are a
    fixed offset from the point's trend variable and whose values depend
    only on the observation, the seasonal anchor and the two IRLS weights.
    The workspace exploits that: it keeps one set of preallocated index and
    value arrays and rewrites them in place for every ``fill`` call, so the
    steady-state hot path performs no list or tuple allocation at all.

    ``fill`` returns ``((rows, columns, values), rhs)`` in exactly the shape
    expected by the array fast path of
    :meth:`repro.solvers.IncrementalBandedLDLT.extend`.  The returned arrays
    are views into the workspace and are overwritten by the next ``fill``;
    callers must consume them before filling again (the solver does).

    The first two points of the window (which lack one or both trend
    difference terms) fall back to the reference :func:`point_contributions`
    -- a cold path that runs at most twice per stream.
    """

    #: row/column positions of the steady-state pattern, relative to the
    #: point's trend variable index; values mirror point_contributions.
    _ROW_OFFSETS = np.array([0, 1, 1, 1, 0, -2, 0, 0, -2, -4, 0, 0, -2], dtype=np.intp)
    _COL_OFFSETS = np.array([0, 1, 0, 1, 0, -2, -2, 0, -2, -4, -2, -4, -4], dtype=np.intp)

    def __init__(self, lambda1: float, lambda2: float):
        self.lambda1 = float(lambda1)
        self.lambda2 = float(lambda2)
        self._rows = np.empty(13, dtype=np.intp)
        self._columns = np.empty(13, dtype=np.intp)
        self._values = np.empty(13)
        # Fit + seasonal anchor entries are weight independent.
        self._values[:4] = 1.0
        self._rhs = np.empty(2)

    def fill(
        self,
        point_index: int,
        value: float,
        anchor: float,
        p_weight: float,
        q_weight: float,
    ):
        """Write one point's contributions into the workspace arrays.

        Returns ``((rows, columns, values), rhs)`` where the first element
        feeds :meth:`IncrementalBandedLDLT.extend` directly.
        """
        if point_index < 2:
            updates, rhs_new = point_contributions(
                point_index,
                value,
                anchor,
                self.lambda1,
                self.lambda2,
                p_weight,
                q_weight,
            )
            rows, columns, values = zip(*updates)
            return (
                (
                    np.array(rows, dtype=np.intp),
                    np.array(columns, dtype=np.intp),
                    np.array(values, dtype=float),
                ),
                np.array(rhs_new, dtype=float),
            )
        trend_index = 2 * point_index
        np.add(self._ROW_OFFSETS, trend_index, out=self._rows)
        np.add(self._COL_OFFSETS, trend_index, out=self._columns)
        values = self._values
        first_weight = self.lambda1 * p_weight
        second_weight = self.lambda2 * q_weight
        values[4] = first_weight
        values[5] = first_weight
        values[6] = -first_weight
        values[7] = second_weight
        values[8] = 4.0 * second_weight
        values[9] = second_weight
        values[10] = -2.0 * second_weight
        values[11] = second_weight
        values[12] = -2.0 * second_weight
        rhs = self._rhs
        rhs[0] = value
        rhs[1] = value + anchor
        return (self._rows, self._columns, values), rhs
