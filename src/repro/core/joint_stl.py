"""Batch JointSTL (paper Section 3.1, Algorithm 1).

JointSTL estimates the trend and seasonal components *jointly* by solving

    min_{tau, s}  sum_t (tau_t + s_t - y_t)^2
                + sum_{t>T} (s_t - s_{t-T})^2
                + lambda_1 * sum_t |tau_t - tau_{t-1}|
                + lambda_2 * sum_t |tau_t - 2 tau_{t-1} + tau_{t-2}|

with IRLS: the l1 penalties are replaced by iteratively re-weighted
quadratic terms (Eq. (3)-(5)), so every iteration reduces to one sparse
symmetric linear solve (Eq. (6)).

Implementation notes
--------------------
* The objective is invariant to moving a constant between the trend and the
  seasonal component (both the difference penalties and the fit term ignore
  a constant exchange), so the normal-equation matrix of the *batch* problem
  is singular.  A tiny ridge term ``seasonal_ridge * ||s||^2`` pins the
  constant to the trend; its default (1e-6) is far below the scale of any
  other term and does not measurably change the decomposition.
* The per-iteration sparse systems are solved with SciPy's sparse Cholesky
  (via ``splu`` on the CSC matrix), which is exact -- the IRLS iterations
  are the only approximation, just as in the paper.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.decomposition.base import BatchDecomposer, DecompositionResult
from repro.utils import as_float_array, check_period, check_positive, check_positive_int

__all__ = ["JointSTL"]


class JointSTL(BatchDecomposer):
    """Batch joint seasonal-trend decomposition via IRLS (Algorithm 1).

    Parameters
    ----------
    period:
        Seasonal period length ``T``.
    lambda1, lambda2:
        Weights of the first and second order l1 trend-difference penalties.
    iterations:
        Number of IRLS iterations ``I``.
    epsilon:
        Lower bound on the absolute trend differences when computing the
        IRLS weights (guards the ``1 / (2 |.|)`` update against division by
        zero).
    seasonal_ridge:
        Tiny ridge applied to the seasonal block to remove the constant
        trend/seasonal ambiguity of the batch objective (see module notes).
    """

    def __init__(
        self,
        period: int,
        lambda1: float = 1.0,
        lambda2: float = 1.0,
        iterations: int = 8,
        epsilon: float = 1e-6,
        seasonal_ridge: float = 1e-6,
    ):
        self.period = check_period(period)
        self.lambda1 = check_positive(lambda1, "lambda1")
        self.lambda2 = check_positive(lambda2, "lambda2")
        self.iterations = check_positive_int(iterations, "iterations")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.seasonal_ridge = check_positive(seasonal_ridge, "seasonal_ridge")

    # ------------------------------------------------------------------ API

    def decompose(self, values) -> DecompositionResult:
        values = as_float_array(values, "values", min_length=self.period + 3)
        n = values.size
        period = self.period

        fit_block, seasonal_block, first_diff, second_diff = self._design_matrices(n, period)
        rhs = fit_block.T @ values

        p_weights = np.ones(n - 1)
        q_weights = np.ones(n - 2)
        trend = np.zeros(n)
        seasonal = np.zeros(n)
        for _ in range(self.iterations):
            system = (
                (fit_block.T @ fit_block)
                + (seasonal_block.T @ seasonal_block)
                + self.lambda1 * (first_diff.T @ sparse.diags(p_weights) @ first_diff)
                + self.lambda2 * (second_diff.T @ sparse.diags(q_weights) @ second_diff)
                + self._ridge(n)
            )
            solution = splu(system.tocsc()).solve(rhs)
            trend = solution[:n]
            seasonal = solution[n:]
            p_weights = 0.5 / np.maximum(np.abs(np.diff(trend)), self.epsilon)
            q_weights = 0.5 / np.maximum(np.abs(np.diff(trend, n=2)), self.epsilon)

        residual = values - trend - seasonal
        return DecompositionResult(
            observed=values,
            trend=trend,
            seasonal=seasonal,
            residual=residual,
            period=period,
        )

    # ------------------------------------------------------------- internals

    def _design_matrices(self, n: int, period: int):
        """Build the sparse design matrices B1, B2, B3, B4 of Eq. (6)."""
        identity = sparse.identity(n, format="csr")
        fit_block = sparse.hstack([identity, identity], format="csr")

        rows = np.arange(n - period)
        seasonal_diff = sparse.csr_matrix(
            (
                np.concatenate([np.ones(n - period), -np.ones(n - period)]),
                (
                    np.concatenate([rows, rows]),
                    np.concatenate([rows + period + n, rows + n]),
                ),
            ),
            shape=(n - period, 2 * n),
        )

        rows = np.arange(n - 1)
        first_diff = sparse.csr_matrix(
            (
                np.concatenate([np.ones(n - 1), -np.ones(n - 1)]),
                (np.concatenate([rows, rows]), np.concatenate([rows + 1, rows])),
            ),
            shape=(n - 1, 2 * n),
        )

        rows = np.arange(n - 2)
        second_diff = sparse.csr_matrix(
            (
                np.concatenate([np.ones(n - 2), -2 * np.ones(n - 2), np.ones(n - 2)]),
                (
                    np.concatenate([rows, rows, rows]),
                    np.concatenate([rows + 2, rows + 1, rows]),
                ),
            ),
            shape=(n - 2, 2 * n),
        )
        return fit_block, seasonal_diff, first_diff, second_diff

    def _ridge(self, n: int) -> sparse.spmatrix:
        diagonal = np.concatenate([np.zeros(n), np.full(n, self.seasonal_ridge)])
        return sparse.diags(diagonal)
