"""Automatic selection of the trend-smoothness parameter ``lambda``.

The paper ties ``lambda_1 = lambda_2 = lambda`` and selects the value on the
training/initialization window by running both STL and OneShotSTL with each
candidate ``lambda in {1, 10, 100, 1000, 10000}`` and keeping the candidate
whose decomposition is closest (smallest MAE on the trend and seasonal
components) to STL's (Section 5.1.4).  :func:`select_lambda` reproduces that
procedure; a cheaper variant based on the batch JointSTL model is available
through the ``method`` argument.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.joint_stl import JointSTL
from repro.core.oneshotstl import OneShotSTL
from repro.decomposition.stl import STL
from repro.utils import as_float_array, check_period

__all__ = ["select_lambda", "DEFAULT_LAMBDA_GRID"]

#: Candidate grid used by the paper (10^0 .. 10^4).
DEFAULT_LAMBDA_GRID: Sequence[float] = (1.0, 10.0, 100.0, 1000.0, 10000.0)


def select_lambda(
    values,
    period: int,
    candidates: Iterable[float] = DEFAULT_LAMBDA_GRID,
    iterations: int = 8,
    method: str = "oneshotstl",
    initialization_length: int | None = None,
) -> float:
    """Pick the ``lambda`` whose decomposition best matches STL on ``values``.

    Parameters
    ----------
    values:
        Training window (should cover several seasonal periods).
    period:
        Seasonal period length.
    candidates:
        Candidate ``lambda`` values.
    iterations:
        IRLS iteration count used while evaluating candidates.
    method:
        ``"oneshotstl"`` (paper procedure: run the online method over the
        window) or ``"jointstl"`` (cheaper: run the batch joint model).
    initialization_length:
        Length of the prefix used to initialize the online method when
        ``method == "oneshotstl"``; defaults to two periods.

    Returns
    -------
    float
        The selected ``lambda``.
    """
    values = as_float_array(values, "values", min_length=3 * check_period(period))
    if method not in ("oneshotstl", "jointstl"):
        raise ValueError("method must be 'oneshotstl' or 'jointstl'")

    reference = STL(period, seasonal_window="periodic").decompose(values)

    if initialization_length is None:
        initialization_length = 2 * period
    initialization_length = min(initialization_length, values.size - period)

    best_lambda = None
    best_error = np.inf
    for candidate in candidates:
        candidate = float(candidate)
        if method == "jointstl":
            model = JointSTL(
                period, lambda1=candidate, lambda2=candidate, iterations=iterations
            )
            result = model.decompose(values)
            trend = result.trend
            seasonal = result.seasonal
            comparison_slice = slice(0, values.size)
        else:
            model = OneShotSTL(
                period,
                lambda1=candidate,
                lambda2=candidate,
                iterations=iterations,
                shift_window=0,
            )
            result = model.decompose(values, initialization_length)
            trend = result.trend
            seasonal = result.seasonal
            comparison_slice = slice(initialization_length, values.size)
        error = float(
            np.mean(np.abs(trend[comparison_slice] - reference.trend[comparison_slice]))
            + np.mean(
                np.abs(seasonal[comparison_slice] - reference.seasonal[comparison_slice])
            )
        )
        if error < best_error:
            best_error = error
            best_lambda = candidate
    return float(best_lambda)
