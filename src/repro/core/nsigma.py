"""Streaming NSigma anomaly scorer (paper Algorithm 6).

NSigma keeps a running mean and variance of the values it has seen and
scores every new value by its absolute z-score.  It is used in three places
in the reproduction, exactly as in the paper:

* as a standalone TSAD baseline applied directly to the raw series,
* as the scoring stage of the STD-based detectors (applied to the
  decomposed residual), and
* inside OneShotSTL's seasonality-shift handling (Section 3.4), where an
  anomalous residual triggers the shift search.

The running variance uses Welford's online algorithm rather than the
textbook ``E[x^2] - E[x]^2`` identity: the latter catastrophically cancels
for series with a large offset relative to their spread (for a metric
hovering around 1e8 the two terms agree to ~16 digits, so their float64
difference is mostly rounding noise and can even go negative), which makes
the z-scores garbage exactly on the high-volume counters a monitoring
fleet cares about.  Welford tracks the centered second moment directly and
stays accurate at any offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.registry import register_scorer
from repro.utils import as_float_array, check_positive

__all__ = ["NSigma", "NSigmaVerdict"]


@dataclass(frozen=True, slots=True)
class NSigmaVerdict:
    """Outcome of scoring a single value."""

    score: float
    is_anomaly: bool


@register_scorer("nsigma")
class NSigma:
    """Streaming z-score anomaly detector.

    Parameters
    ----------
    threshold:
        Number of standard deviations above which a value is flagged
        (the paper uses ``n = 5``).
    minimum_std:
        Lower bound applied to the running standard deviation so that a
        constant warm-up prefix does not produce infinite scores.
    """

    def __init__(self, threshold: float = 5.0, minimum_std: float = 1e-12):
        self.threshold = check_positive(threshold, "threshold")
        self.minimum_std = check_positive(minimum_std, "minimum_std")
        self._count = 0
        self._mean = 0.0
        # Sum of squared deviations from the running mean (Welford's M2).
        self._m2 = 0.0

    # ------------------------------------------------------------------ API

    def get_params(self) -> dict:
        """Primitive constructor parameters (see :mod:`repro.specs`)."""
        return {"threshold": self.threshold, "minimum_std": self.minimum_std}

    @property
    def count(self) -> int:
        """Number of values incorporated so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean (0.0 before any value is seen)."""
        return self._mean

    @property
    def std(self) -> float:
        """Running (population) standard deviation."""
        if self._count == 0:
            return 0.0
        variance = self._m2 / self._count
        return float(np.sqrt(max(variance, 0.0)))

    def score(self, value: float) -> NSigmaVerdict:
        """Score ``value`` against the running statistics without updating them."""
        value = float(value)
        if self._count == 0:
            return NSigmaVerdict(score=0.0, is_anomaly=False)
        std = max(self.std, self.minimum_std)
        score = abs(value - self.mean) / std
        return NSigmaVerdict(score=score, is_anomaly=bool(score > self.threshold))

    def update(self, value: float) -> NSigmaVerdict:
        """Score ``value`` and then fold it into the running statistics."""
        verdict = self.score(value)
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        return verdict

    def score_series(self, values) -> np.ndarray:
        """Score every value of a series in streaming order.

        Returns the array of anomaly scores; the running statistics are
        updated as the series is consumed, exactly as in the online setting.
        """
        values = as_float_array(values, "values")
        scores = np.empty(values.size)
        for index, value in enumerate(values):
            scores[index] = self.update(float(value)).score
        return scores

    def copy(self) -> "NSigma":
        """Return an independent copy of the detector state."""
        clone = NSigma(self.threshold, self.minimum_std)
        clone._count = self._count
        clone._mean = self._mean
        clone._m2 = self._m2
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NSigma(threshold={self.threshold}, count={self._count})"
