"""Columnar fleet kernel: one array op advances every OneShotSTL series.

A production fleet runs the O(1) online decomposition on thousands of
metrics at once.  Advancing each series through its own Python
:class:`~repro.core.oneshotstl.OneShotSTL` instance pays the interpreter
cost ``n`` times per point; this module instead keeps the *whole fleet's*
state in struct-of-arrays form and advances every series with a handful of
NumPy operations per IRLS iteration:

* the per-iteration incremental solvers become one
  :class:`~repro.solvers.batched_ldlt.BatchedIncrementalLDLT` per IRLS
  iteration (``(n, w, w)`` corrected trailing blocks);
* seasonal buffers, trends, phase counters and the residual monitor's
  Welford statistics become contiguous ``(n, ...)`` arrays.

Because every array operation is elementwise over the series axis and is
applied in exactly the order the scalar model performs it, the kernel's
outputs equal the scalar path's outputs *exactly* -- the oracle tests
assert float-for-float equality, shift searches and all.

Series whose seasonality-shift search triggers diverge from the lockstep
batch: those (rare) series fall back to the scalar search
(:func:`repro.core.oneshotstl._search_best_shift` -- the same code the
scalar model runs), reading their pre-advance state back out of the batched
solvers' undo level, and the chosen state is scattered back into the
columnar arrays.  The fleet therefore pays the expensive search only for
the series that trigger it, exactly like the scalar model does.

The kernel is deliberately dumb about membership: it packs already-warm
scalar models (:meth:`FleetKernel.pack`), extracts any member back into an
equivalent scalar model (:meth:`FleetKernel.extract` /
:meth:`FleetKernel.write_into`), and advances all or a subset of columns
(:meth:`FleetKernel.update`).  Grouping series by configuration, lazy
absorption and checkpoint (de)materialization live in the streaming engine
(:mod:`repro.streaming.engine`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.nsigma import NSigma
from repro.core.oneshotstl import (
    OneShotSTL,
    _advance_states,
    _IterationState,
    _search_best_shift,
)
from repro.analysis import hotpath
from repro.core.online_system import HALF_BANDWIDTH, ContributionWorkspace
from repro.solvers.batched_ldlt import BatchedIncrementalLDLT
from repro.utils import amortized_append

__all__ = ["ColumnarNSigma", "FleetKernel", "FleetUpdate"]

#: local trailing-block coordinates of the steady-state per-point update
#: pattern (ContributionWorkspace offsets shifted to the appended trend
#: variable, which always sits at local index ``HALF_BANDWIDTH``).
_PATTERN_ROWS = HALF_BANDWIDTH + ContributionWorkspace._ROW_OFFSETS
_PATTERN_COLS = HALF_BANDWIDTH + ContributionWorkspace._COL_OFFSETS


class ColumnarNSigma:
    """Struct-of-arrays form of ``n`` independent :class:`NSigma` scorers.

    All members must share ``threshold`` and ``minimum_std`` (they come
    from one pipeline spec).  ``score``/``update`` vectorize the scalar
    scorer's exact operation sequence over the series axis, so scores and
    verdicts equal the scalar scorers' exactly.
    """

    def __init__(
        self,
        threshold: float,
        minimum_std: float,
        count: np.ndarray,
        mean: np.ndarray,
        m2: np.ndarray,
    ):
        self.threshold = float(threshold)
        self.minimum_std = float(minimum_std)
        self.count = np.asarray(count, dtype=np.int64)
        self.mean = np.asarray(mean, dtype=float)
        self.m2 = np.asarray(m2, dtype=float)

    @classmethod
    def empty(cls, threshold: float, minimum_std: float) -> "ColumnarNSigma":
        return cls(
            threshold,
            minimum_std,
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            np.zeros(0),
        )

    @classmethod
    def pack(cls, scorers: Sequence[NSigma]) -> "ColumnarNSigma":
        """Lift scalar scorers into columnar form (scalars left untouched)."""
        if not scorers:
            raise ValueError("pack() needs at least one scorer")
        threshold = scorers[0].threshold
        minimum_std = scorers[0].minimum_std
        for index, scorer in enumerate(scorers):
            if (
                scorer.threshold != threshold
                or scorer.minimum_std != minimum_std
            ):
                raise ValueError(
                    f"scorer {index} has different parameters; a columnar "
                    "batch requires a uniform threshold and minimum_std"
                )
        return cls(
            threshold,
            minimum_std,
            np.array([scorer._count for scorer in scorers], dtype=np.int64),
            np.array([scorer._mean for scorer in scorers], dtype=float),
            np.array([scorer._m2 for scorer in scorers], dtype=float),
        )

    @property
    def n_series(self) -> int:
        return self.count.shape[0]

    def extract(self, index: int) -> NSigma:
        """Materialize member ``index`` as an equivalent scalar scorer."""
        scorer = NSigma(self.threshold, self.minimum_std)
        self.write_into(index, scorer)
        return scorer

    def write_into(self, index: int, scorer: NSigma) -> None:
        """Overwrite a scalar scorer's state with member ``index``."""
        scorer._count = int(self.count[index])
        scorer._mean = float(self.mean[index])
        scorer._m2 = float(self.m2[index])

    def write_many(self, columns: np.ndarray, scorers: Sequence[NSigma]) -> None:
        """Overwrite ``scorers[i]`` with member ``columns[i]``, for all ``i``.

        One gather + bulk ``tolist`` per state array instead of three
        per-member array indexings; values are identical to repeated
        :meth:`write_into` calls.
        """
        counts = self.count[columns].tolist()
        means = self.mean[columns].tolist()
        m2s = self.m2[columns].tolist()
        for position, scorer in enumerate(scorers):
            scorer._count = counts[position]
            scorer._mean = means[position]
            scorer._m2 = m2s[position]

    def load(self, index: int, scorer: NSigma) -> None:
        """Overwrite member ``index`` with a scalar scorer's state."""
        self.count[index] = scorer._count
        self.mean[index] = scorer._mean
        self.m2[index] = scorer._m2

    def append(self, other: "ColumnarNSigma") -> None:
        """Append members with amortized (capacity-doubling) growth."""
        if (
            other.threshold != self.threshold
            or other.minimum_std != self.minimum_std
        ):
            raise ValueError("parameter mismatch between columnar batches")
        self.count = amortized_append(self.count, other.count)
        self.mean = amortized_append(self.mean, other.mean)
        self.m2 = amortized_append(self.m2, other.m2)

    def select(self, columns: np.ndarray) -> "ColumnarNSigma":
        return ColumnarNSigma(
            self.threshold,
            self.minimum_std,
            self.count[columns],
            self.mean[columns],
            self.m2[columns],
        )

    def assign(self, columns: np.ndarray, other: "ColumnarNSigma") -> None:
        self.count[columns] = other.count
        self.mean[columns] = other.mean
        self.m2[columns] = other.m2

    @hotpath
    def score(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Score without updating; returns ``(scores, is_anomaly)`` arrays."""
        variance = self.m2 / np.maximum(self.count, 1)
        std = np.sqrt(np.maximum(variance, 0.0))
        std = np.maximum(std, self.minimum_std)
        scores = np.abs(values - self.mean) / std
        # A scorer that has seen nothing yet returns (0.0, False), exactly
        # like the scalar scorer's count == 0 guard.
        fresh = self.count == 0
        if fresh.any():
            scores = np.where(fresh, 0.0, scores)
        return scores, scores > self.threshold

    @hotpath
    def update(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Score then fold ``values`` into the running Welford statistics."""
        scores, flags = self.score(values)
        self.count += 1
        delta = values - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (values - self.mean)
        return scores, flags


class FleetUpdate:
    """Per-point outputs of one :meth:`FleetKernel.update` call.

    All fields are arrays over the updated columns, in column order:
    ``value`` carries the (possibly imputed) observation, ``residual`` the
    post-shift-search residual and ``detection_residual`` the pre-search
    residual that downstream anomaly scorers must consume (the same
    contract as the scalar model's ``last_detection_residual``).
    """

    __slots__ = ("value", "trend", "seasonal", "residual", "detection_residual")

    def __init__(self, value, trend, seasonal, residual, detection_residual):
        self.value = value
        self.trend = trend
        self.seasonal = seasonal
        self.residual = residual
        self.detection_residual = detection_residual


class _BatchedIterationState:
    """Columnar counterpart of one per-IRLS-iteration ``_IterationState``."""

    __slots__ = ("solver", "previous_trend", "before_previous_trend")

    def __init__(
        self,
        solver: BatchedIncrementalLDLT,
        previous_trend: np.ndarray,
        before_previous_trend: np.ndarray,
    ):
        self.solver = solver
        self.previous_trend = previous_trend
        self.before_previous_trend = before_previous_trend


class FleetKernel:
    """Columnar OneShotSTL state for ``n`` series sharing one configuration.

    Use :meth:`pack` to build a kernel from live scalar models; all members
    must share the constructor hyper-parameters (they normally come from
    one :class:`~repro.specs.PipelineSpec`), be initialized, be past the
    solver warm-up (every per-iteration solver in incremental mode, which
    holds after ``3 * HALF_BANDWIDTH / 2`` online points) and use the
    default (non-custom) initializer path.  :meth:`eligible` reports
    whether a model can currently be packed.
    """

    def __init__(self, params: dict, n_series: int):
        self.period = int(params["period"])
        self.lambda1 = float(params["lambda1"])
        self.lambda2 = float(params["lambda2"])
        self.iterations = int(params["iterations"])
        self.shift_window = int(params["shift_window"])
        self.shift_threshold = float(params["shift_threshold"])
        self.epsilon = float(params["epsilon"])
        self._n = int(n_series)
        # Scalar workspace shared by the per-series fallback paths.
        self._workspace = ContributionWorkspace(self.lambda1, self.lambda2)
        # Reusable per-update workspaces (allocated lazily, sized to n):
        # the row-index gather vector and the per-iteration pattern/rhs
        # buffers of _advance_batched.  Purely an allocation-avoidance
        # cache -- no decomposition state lives here.
        self._arange: np.ndarray | None = None
        self._pattern_values: np.ndarray | None = None
        self._rhs_values: np.ndarray | None = None

    def _rows(self) -> np.ndarray:
        """``np.arange(n_series)`` (cached; used for per-series gathers)."""
        rows = self._arange
        if rows is None or rows.size != self._n:
            self._arange = rows = np.arange(self._n)
        return rows

    # ----------------------------------------------------------- construction

    @staticmethod
    def eligible(model) -> bool:
        """Whether ``model`` is a packable, warm OneShotSTL instance."""
        if type(model) is not OneShotSTL:
            return False
        if not getattr(model, "_initialized", False) or model._initializer is not None:
            return False
        return all(
            state.solver.is_incremental for state in model._iterations_state
        )

    @classmethod
    def pack(cls, models: Sequence[OneShotSTL]) -> "FleetKernel":
        """Lift warm scalar models into one columnar kernel.

        The scalar instances are left untouched (their state is copied); a
        model that later needs to leave the batch is rebuilt with
        :meth:`extract` or :meth:`write_into`.
        """
        if not models:
            raise ValueError("pack() needs at least one model")
        reference = models[0].get_params()
        for index, model in enumerate(models):
            if not cls.eligible(model):
                raise ValueError(
                    f"model {index} is not packable (must be an initialized "
                    "OneShotSTL past solver warm-up, without a custom "
                    "initializer)"
                )
            if model.get_params() != reference:
                raise ValueError(
                    f"model {index} has different hyper-parameters; a fleet "
                    "kernel requires a uniform configuration"
                )
        kernel = cls(reference, len(models))
        kernel.seasonal_buffer = np.array(
            [model._seasonal_buffer for model in models], dtype=float
        )
        kernel.global_index = np.array(
            [model._global_index for model in models], dtype=np.int64
        )
        kernel.points_processed = np.array(
            [model._points_processed for model in models], dtype=np.int64
        )
        kernel.last_trend = np.array(
            [model._last_trend for model in models], dtype=float
        )
        kernel.last_detection_residual = np.array(
            [model._last_detection_residual for model in models], dtype=float
        )
        kernel.last_applied_shift = np.array(
            [model._last_applied_shift for model in models], dtype=np.int64
        )
        kernel.monitor = ColumnarNSigma.pack(
            [model._residual_monitor for model in models]
        )
        kernel.iteration_states = []
        for iteration in range(kernel.iterations):
            states = [model._iterations_state[iteration] for model in models]
            kernel.iteration_states.append(
                _BatchedIterationState(
                    solver=BatchedIncrementalLDLT.pack(
                        [state.solver for state in states]
                    ),
                    previous_trend=np.array(
                        [state.previous_trend for state in states], dtype=float
                    ),
                    before_previous_trend=np.array(
                        [state.before_previous_trend for state in states],
                        dtype=float,
                    ),
                )
            )
        return kernel

    @property
    def n_series(self) -> int:
        return self._n

    def get_params(self) -> dict:
        """The uniform OneShotSTL constructor parameters of the fleet."""
        return {
            "period": self.period,
            "lambda1": self.lambda1,
            "lambda2": self.lambda2,
            "iterations": self.iterations,
            "shift_window": self.shift_window,
            "shift_threshold": self.shift_threshold,
            "epsilon": self.epsilon,
        }

    # ------------------------------------------------ scalar interoperability

    def extract(self, index: int) -> OneShotSTL:
        """Materialize member ``index`` as an equivalent scalar model."""
        model = OneShotSTL(**self.get_params())
        model._initialized = True
        model._seasonal_buffer = self.seasonal_buffer[index].copy()
        model._workspace = ContributionWorkspace(self.lambda1, self.lambda2)
        model._residual_monitor = NSigma(self.shift_threshold)
        model._iterations_state = [
            _IterationState(solver=None, previous_trend=0.0, before_previous_trend=0.0)
            for _ in range(self.iterations)
        ]
        self.write_into(index, model)
        return model

    def write_into(self, index: int, model: OneShotSTL) -> None:
        """Overwrite a live scalar model's state with member ``index``.

        The model keeps its identity (and its workspace/initializer
        attributes); only the evolving decomposition state is written.
        """
        model._seasonal_buffer[:] = self.seasonal_buffer[index]
        model._global_index = int(self.global_index[index])
        model._points_processed = int(self.points_processed[index])
        model._last_trend = float(self.last_trend[index])
        model._last_detection_residual = float(
            self.last_detection_residual[index]
        )
        model._last_applied_shift = int(self.last_applied_shift[index])
        self.monitor.write_into(index, model._residual_monitor)
        for iteration, batched in enumerate(self.iteration_states):
            state = model._iterations_state[iteration]
            state.solver = batched.solver.extract(index)
            state.previous_trend = float(batched.previous_trend[index])
            state.before_previous_trend = float(
                batched.before_previous_trend[index]
            )

    def write_members(
        self, columns: np.ndarray, models: Sequence[OneShotSTL]
    ) -> None:
        """Overwrite ``models[i]`` with member ``columns[i]``, for all ``i``.

        The batched form of :meth:`write_into`: every per-series state
        array is gathered once and bulk-converted (``ndarray.tolist()``
        yields exact Python scalars), and the per-iteration solvers come
        out of :meth:`BatchedIncrementalLDLT.extract_many`.  This is the
        cohort-granular state export the durable checkpoint layer runs on:
        writing one dirty cohort of a large fleet touches only that
        cohort's columns, never the whole kernel.  Values are identical to
        repeated :meth:`write_into` calls.
        """
        columns = np.asarray(columns, dtype=np.intp)
        seasonal = self.seasonal_buffer[columns]
        global_index = self.global_index[columns].tolist()
        points_processed = self.points_processed[columns].tolist()
        last_trend = self.last_trend[columns].tolist()
        last_detection = self.last_detection_residual[columns].tolist()
        last_shift = self.last_applied_shift[columns].tolist()
        per_iteration = [
            (
                batched.solver.extract_many(columns),
                batched.previous_trend[columns].tolist(),
                batched.before_previous_trend[columns].tolist(),
            )
            for batched in self.iteration_states
        ]
        self.monitor.write_many(
            columns, [model._residual_monitor for model in models]
        )
        for position, model in enumerate(models):
            model._seasonal_buffer[:] = seasonal[position]
            model._global_index = global_index[position]
            model._points_processed = points_processed[position]
            model._last_trend = last_trend[position]
            model._last_detection_residual = last_detection[position]
            model._last_applied_shift = last_shift[position]
            for state, (solvers, previous, before) in zip(
                model._iterations_state, per_iteration
            ):
                state.solver = solvers[position]
                state.previous_trend = previous[position]
                state.before_previous_trend = before[position]

    def load(self, index: int, model: OneShotSTL) -> None:
        """Overwrite member ``index`` with a scalar model's state."""
        self.seasonal_buffer[index] = model._seasonal_buffer
        self.global_index[index] = model._global_index
        self.points_processed[index] = model._points_processed
        self.last_trend[index] = model._last_trend
        self.last_detection_residual[index] = model._last_detection_residual
        self.last_applied_shift[index] = model._last_applied_shift
        self.monitor.load(index, model._residual_monitor)
        for iteration, batched in enumerate(self.iteration_states):
            state = model._iterations_state[iteration]
            batched.solver.load(index, state.solver)
            batched.previous_trend[index] = state.previous_trend
            batched.before_previous_trend[index] = state.before_previous_trend

    def unpack(self) -> list[OneShotSTL]:
        """Materialize every member as an independent scalar model."""
        return [self.extract(index) for index in range(self._n)]

    # ------------------------------------------------------ batch membership

    def append(self, other: "FleetKernel") -> None:
        """Append the members of ``other`` (same configuration required).

        Growth is amortized: every columnar array (and the batched solvers'
        state buffers) carries hidden spare capacity that is doubled when
        exhausted, so absorbing a trickle of late-joining series one
        cohort at a time costs O(total members) instead of one full-fleet
        copy per cohort.
        """
        if other.get_params() != self.get_params():
            raise ValueError("configuration mismatch between fleet kernels")
        self.seasonal_buffer = amortized_append(
            self.seasonal_buffer, other.seasonal_buffer
        )
        self.global_index = amortized_append(self.global_index, other.global_index)
        self.points_processed = amortized_append(
            self.points_processed, other.points_processed
        )
        self.last_trend = amortized_append(self.last_trend, other.last_trend)
        self.last_detection_residual = amortized_append(
            self.last_detection_residual, other.last_detection_residual
        )
        self.last_applied_shift = amortized_append(
            self.last_applied_shift, other.last_applied_shift
        )
        self.monitor.append(other.monitor)
        for mine, theirs in zip(self.iteration_states, other.iteration_states):
            mine.solver.append(theirs.solver)
            mine.previous_trend = amortized_append(
                mine.previous_trend, theirs.previous_trend
            )
            mine.before_previous_trend = amortized_append(
                mine.before_previous_trend, theirs.before_previous_trend
            )
        self._n += other._n

    def select(self, columns: np.ndarray) -> "FleetKernel":
        """Gathered copy of the members at ``columns``."""
        sub = FleetKernel(self.get_params(), len(columns))
        sub.seasonal_buffer = self.seasonal_buffer[columns]
        sub.global_index = self.global_index[columns]
        sub.points_processed = self.points_processed[columns]
        sub.last_trend = self.last_trend[columns]
        sub.last_detection_residual = self.last_detection_residual[columns]
        sub.last_applied_shift = self.last_applied_shift[columns]
        sub.monitor = self.monitor.select(columns)
        sub.iteration_states = [
            _BatchedIterationState(
                solver=state.solver.select(columns),
                previous_trend=state.previous_trend[columns],
                before_previous_trend=state.before_previous_trend[columns],
            )
            for state in self.iteration_states
        ]
        return sub

    def assign(self, columns: np.ndarray, other: "FleetKernel") -> None:
        """Scatter the members of ``other`` back into ``columns``."""
        self.seasonal_buffer[columns] = other.seasonal_buffer
        self.global_index[columns] = other.global_index
        self.points_processed[columns] = other.points_processed
        self.last_trend[columns] = other.last_trend
        self.last_detection_residual[columns] = other.last_detection_residual
        self.last_applied_shift[columns] = other.last_applied_shift
        self.monitor.assign(columns, other.monitor)
        for mine, theirs in zip(self.iteration_states, other.iteration_states):
            mine.solver.assign(columns, theirs.solver)
            mine.previous_trend[columns] = theirs.previous_trend
            mine.before_previous_trend[columns] = theirs.before_previous_trend

    # -------------------------------------------------------------- streaming

    @hotpath
    def update(
        self, values: np.ndarray, columns: np.ndarray | None = None
    ) -> FleetUpdate:
        """Decompose one new observation per (selected) series.

        ``values`` holds one observation per updated column (NaN marks a
        missing observation and is imputed with the series' own one-step
        forecast, exactly like the scalar model).  With ``columns=None``
        every member advances; otherwise only the given columns advance
        (gather -> batched update -> scatter), so a fleet whose series
        arrive on different schedules still takes the array path.
        """
        if columns is not None:
            columns = np.asarray(columns, dtype=np.intp)
            sub = self.select(columns)
            result = sub.update(np.asarray(values, dtype=float))
            self.assign(columns, sub)
            return result

        n = self._n
        rows = self._rows()
        values = np.asarray(values, dtype=float)
        if values.shape != (n,):
            raise ValueError(f"values must have shape ({n},)")

        # Missing observations: impute with the model's own one-step
        # forecast (latest trend + seasonal buffer at the current phase).
        finite = np.isfinite(values)
        if not finite.all():
            phase = self.global_index % self.period
            forecast = self.last_trend + self.seasonal_buffer[rows, phase]
            values = np.where(finite, values, forecast)

        # Advance every series through the I IRLS iterations with one
        # batched solver append + tail solve per iteration.  The advance
        # updates the trend-pair state in place, so the pre-advance pairs
        # are copied out first for the per-series shift-search fallback --
        # only when the shift search is enabled at all.
        anchor = self.seasonal_buffer[rows, self.global_index % self.period]
        if self.shift_window > 0:
            previous_trends = [
                (state.previous_trend.copy(), state.before_previous_trend.copy())
                for state in self.iteration_states
            ]
        else:
            previous_trends = None
        trend, seasonal = self._advance_batched(values, anchor)
        residual = (values - trend) - seasonal
        detection_residual = residual

        chosen_shift = np.zeros(n, dtype=np.int64)
        if self.shift_window > 0:
            _, flagged = self.monitor.score(residual)
            if flagged.any():
                trend = trend.copy()
                seasonal = seasonal.copy()
                residual = residual.copy()
                for index in np.flatnonzero(flagged):
                    shift, chosen_trend, chosen_seasonal = (
                        self._shift_search_fallback(
                            int(index), float(values[index]), previous_trends
                        )
                    )
                    chosen_shift[index] = shift
                    trend[index] = chosen_trend
                    seasonal[index] = chosen_seasonal
                    residual[index] = (
                        float(values[index]) - chosen_trend
                    ) - chosen_seasonal
                    if shift != 0:
                        self.last_applied_shift[index] = shift

        # The monitor tracks the *detection* residual so that one corrected
        # point does not mask a persistent problem from the statistics.
        # All per-series state is written in place (never rebound) so the
        # arrays keep their append capacity (see :meth:`append`).
        self.monitor.update(detection_residual)
        position = (self.global_index + chosen_shift) % self.period
        self.seasonal_buffer[rows, position] = seasonal
        self.global_index += 1
        self.points_processed += 1
        np.copyto(self.last_trend, trend)
        np.copyto(self.last_detection_residual, detection_residual)
        return FleetUpdate(values, trend, seasonal, residual, detection_residual)

    # ------------------------------------------------------------- internals

    @hotpath
    def _advance_batched(
        self, values: np.ndarray, anchor: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched mirror of :func:`repro.core.oneshotstl._advance_states`.

        Every elementwise operation happens in the same order as the scalar
        code, so the results are identical float for float.
        """
        n = self._n
        epsilon = self.epsilon
        next_p = np.ones(n)
        next_q = np.ones(n)
        # The pattern/rhs workspaces are cell-major ((13, n) / (2, n)) so
        # the batched solver consumes their transposed views without a
        # transposition copy (see BatchedIncrementalLDLT.extend).
        pattern_values = self._pattern_values
        if pattern_values is None or pattern_values.shape[1] != n:
            self._pattern_values = pattern_values = np.empty(
                (_PATTERN_ROWS.size, n)
            )
            self._rhs_values = np.empty((2, n))
        rhs = self._rhs_values
        pattern_values[:4] = 1.0
        rhs[0] = values
        rhs[1] = values + anchor
        pattern_t = pattern_values.T
        rhs_t = rhs.T
        trend = seasonal = None
        for state in self.iteration_states:
            # Mirrors ContributionWorkspace.fill's steady-state pattern.
            first_weight = self.lambda1 * next_p
            second_weight = self.lambda2 * next_q
            pattern_values[4] = first_weight
            pattern_values[5] = first_weight
            pattern_values[6] = -first_weight
            pattern_values[7] = second_weight
            pattern_values[8] = 4.0 * second_weight
            pattern_values[9] = second_weight
            pattern_values[10] = -2.0 * second_weight
            pattern_values[11] = second_weight
            pattern_values[12] = -2.0 * second_weight
            solver = state.solver
            solver.extend(2, _PATTERN_ROWS, _PATTERN_COLS, pattern_t, rhs_t)
            tail = solver.tail_solution(2)
            trend = tail[:, 0]
            seasonal = tail[:, 1]
            next_p = 0.5 / np.maximum(np.abs(trend - state.previous_trend), epsilon)
            next_q = 0.5 / np.maximum(
                np.abs(
                    trend
                    - 2.0 * state.previous_trend
                    + state.before_previous_trend
                ),
                epsilon,
            )
            # In-place writes (not rebinds) keep the trend-pair arrays'
            # append capacity; update() copies the pre-advance pairs out
            # beforehand when the shift-search fallback may need them.
            np.copyto(state.before_previous_trend, state.previous_trend)
            np.copyto(state.previous_trend, trend)
        return trend, seasonal

    def _shift_search_fallback(
        self,
        index: int,
        value: float,
        previous_trends: list[tuple[np.ndarray, np.ndarray]],
    ) -> tuple[int, float, float]:
        """Scalar shift search for one flagged series.

        Reads the series' pre-advance state back out of the batched
        solvers' undo level, runs the exact scalar candidate search, and
        scatters the chosen state into the columnar arrays.  Returns
        ``(chosen_shift, trend, seasonal)``.
        """
        states = [
            _IterationState(
                solver=batched.solver.extract_pre_extend(index),
                previous_trend=float(previous[index]),
                before_previous_trend=float(before_previous[index]),
            )
            for batched, (previous, before_previous) in zip(
                self.iteration_states, previous_trends
            )
        ]
        chosen_states, trend, seasonal, shift = _search_best_shift(
            states,
            value,
            self.seasonal_buffer[index],
            int(self.global_index[index]),
            self.period,
            self.shift_window,
            int(self.points_processed[index]),
            self._workspace,
            self.epsilon,
        )
        for batched, state in zip(self.iteration_states, chosen_states):
            batched.solver.load(index, state.solver)
            batched.previous_trend[index] = state.previous_trend
            batched.before_previous_trend[index] = state.before_previous_trend
        return shift, trend, seasonal
