"""Columnar fleet kernel: one array op advances every OneShotSTL series.

A production fleet runs the O(1) online decomposition on thousands of
metrics at once.  Advancing each series through its own Python
:class:`~repro.core.oneshotstl.OneShotSTL` instance pays the interpreter
cost ``n`` times per point; this module instead keeps the *whole fleet's*
state in struct-of-arrays form and advances every series with a handful of
NumPy operations per IRLS iteration:

* the per-iteration incremental solvers become one
  :class:`~repro.solvers.batched_ldlt.BatchedIncrementalLDLT` per IRLS
  iteration (``(n, w, w)`` corrected trailing blocks);
* seasonal buffers, trends, phase counters and the residual monitor's
  Welford statistics become contiguous ``(n, ...)`` arrays.

Because every array operation is elementwise over the series axis and is
applied in exactly the order the scalar model performs it, the kernel's
outputs equal the scalar path's outputs *exactly* -- the oracle tests
assert float-for-float equality, shift searches and all.

Series whose seasonality-shift search triggers diverge from the lockstep
batch: those (rare) series fall back to the scalar search
(:func:`repro.core.oneshotstl._search_best_shift` -- the same code the
scalar model runs), reading their pre-advance state back out of the batched
solvers' undo level, and the chosen state is scattered back into the
columnar arrays.  The fleet therefore pays the expensive search only for
the series that trigger it, exactly like the scalar model does.

The kernel is deliberately dumb about membership: it packs already-warm
scalar models (:meth:`FleetKernel.pack`), extracts any member back into an
equivalent scalar model (:meth:`FleetKernel.extract` /
:meth:`FleetKernel.write_into`), and advances all or a subset of columns
(:meth:`FleetKernel.update`).  Grouping series by configuration, lazy
absorption and checkpoint (de)materialization live in the streaming engine
(:mod:`repro.streaming.engine`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.nsigma import NSigma
from repro.core.oneshotstl import (
    OneShotSTL,
    _advance_states,
    _IterationState,
    _search_best_shift,
)
from repro.analysis import hotpath
from repro.core.online_system import HALF_BANDWIDTH, ContributionWorkspace
from repro.solvers.batched_ldlt import BatchedIncrementalLDLT
from repro.utils import amortized_append

__all__ = ["ColumnarNSigma", "FleetKernel", "FleetUpdate"]

#: local trailing-block coordinates of the steady-state per-point update
#: pattern (ContributionWorkspace offsets shifted to the appended trend
#: variable, which always sits at local index ``HALF_BANDWIDTH``).
_PATTERN_ROWS = HALF_BANDWIDTH + ContributionWorkspace._ROW_OFFSETS
_PATTERN_COLS = HALF_BANDWIDTH + ContributionWorkspace._COL_OFFSETS

#: ceiling on the rounds advanced per staged run of :meth:`FleetKernel.
#: update_block`.  Runs must not exceed ``period`` (a longer run would
#: read a seasonal slot an earlier round of the same run wrote); the
#: constant additionally bounds the blocked workspaces for huge periods.
_MAX_BLOCK_ROUNDS = 64


class ColumnarNSigma:
    """Struct-of-arrays form of ``n`` independent :class:`NSigma` scorers.

    All members must share ``threshold`` and ``minimum_std`` (they come
    from one pipeline spec).  ``score``/``update`` vectorize the scalar
    scorer's exact operation sequence over the series axis, so scores and
    verdicts equal the scalar scorers' exactly.
    """

    def __init__(
        self,
        threshold: float,
        minimum_std: float,
        count: np.ndarray,
        mean: np.ndarray,
        m2: np.ndarray,
    ):
        self.threshold = float(threshold)
        self.minimum_std = float(minimum_std)
        self.count = np.asarray(count, dtype=np.int64)
        self.mean = np.asarray(mean, dtype=float)
        self.m2 = np.asarray(m2, dtype=float)

    @classmethod
    def empty(cls, threshold: float, minimum_std: float) -> "ColumnarNSigma":
        return cls(
            threshold,
            minimum_std,
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            np.zeros(0),
        )

    @classmethod
    def pack(cls, scorers: Sequence[NSigma]) -> "ColumnarNSigma":
        """Lift scalar scorers into columnar form (scalars left untouched)."""
        if not scorers:
            raise ValueError("pack() needs at least one scorer")
        threshold = scorers[0].threshold
        minimum_std = scorers[0].minimum_std
        for index, scorer in enumerate(scorers):
            if (
                scorer.threshold != threshold
                or scorer.minimum_std != minimum_std
            ):
                raise ValueError(
                    f"scorer {index} has different parameters; a columnar "
                    "batch requires a uniform threshold and minimum_std"
                )
        return cls(
            threshold,
            minimum_std,
            np.array([scorer._count for scorer in scorers], dtype=np.int64),
            np.array([scorer._mean for scorer in scorers], dtype=float),
            np.array([scorer._m2 for scorer in scorers], dtype=float),
        )

    @property
    def n_series(self) -> int:
        return self.count.shape[0]

    def extract(self, index: int) -> NSigma:
        """Materialize member ``index`` as an equivalent scalar scorer."""
        scorer = NSigma(self.threshold, self.minimum_std)
        self.write_into(index, scorer)
        return scorer

    def write_into(self, index: int, scorer: NSigma) -> None:
        """Overwrite a scalar scorer's state with member ``index``."""
        scorer._count = int(self.count[index])
        scorer._mean = float(self.mean[index])
        scorer._m2 = float(self.m2[index])

    def write_many(self, columns: np.ndarray, scorers: Sequence[NSigma]) -> None:
        """Overwrite ``scorers[i]`` with member ``columns[i]``, for all ``i``.

        One gather + bulk ``tolist`` per state array instead of three
        per-member array indexings; values are identical to repeated
        :meth:`write_into` calls.
        """
        counts = self.count[columns].tolist()
        means = self.mean[columns].tolist()
        m2s = self.m2[columns].tolist()
        for position, scorer in enumerate(scorers):
            scorer._count = counts[position]
            scorer._mean = means[position]
            scorer._m2 = m2s[position]

    def load(self, index: int, scorer: NSigma) -> None:
        """Overwrite member ``index`` with a scalar scorer's state."""
        self.count[index] = scorer._count
        self.mean[index] = scorer._mean
        self.m2[index] = scorer._m2

    def append(self, other: "ColumnarNSigma") -> None:
        """Append members with amortized (capacity-doubling) growth."""
        if (
            other.threshold != self.threshold
            or other.minimum_std != self.minimum_std
        ):
            raise ValueError("parameter mismatch between columnar batches")
        self.count = amortized_append(self.count, other.count)
        self.mean = amortized_append(self.mean, other.mean)
        self.m2 = amortized_append(self.m2, other.m2)

    def select(self, columns: np.ndarray) -> "ColumnarNSigma":
        return ColumnarNSigma(
            self.threshold,
            self.minimum_std,
            self.count[columns],
            self.mean[columns],
            self.m2[columns],
        )

    def assign(self, columns: np.ndarray, other: "ColumnarNSigma") -> None:
        self.count[columns] = other.count
        self.mean[columns] = other.mean
        self.m2[columns] = other.m2

    @hotpath
    def score(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Score without updating; returns ``(scores, is_anomaly)`` arrays."""
        variance = self.m2 / np.maximum(self.count, 1)
        std = np.sqrt(np.maximum(variance, 0.0))
        std = np.maximum(std, self.minimum_std)
        scores = np.abs(values - self.mean) / std
        # A scorer that has seen nothing yet returns (0.0, False), exactly
        # like the scalar scorer's count == 0 guard.
        fresh = self.count == 0
        if fresh.any():
            scores = np.where(fresh, 0.0, scores)
        return scores, scores > self.threshold

    @hotpath
    def update(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Score then fold ``values`` into the running Welford statistics."""
        scores, flags = self.score(values)
        self.count += 1
        delta = values - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (values - self.mean)
        return scores, flags

    @hotpath
    def update_stats(self, values: np.ndarray) -> None:
        """Fold ``values`` into the Welford statistics without scoring.

        Exactly the mutation half of :meth:`update` (scoring reads but
        never writes), so the statistics evolve identically whether or
        not the caller wanted the scores -- the blocked kernel path
        scores separately only when the shift search needs the verdicts.
        """
        self.count += 1
        delta = values - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (values - self.mean)

    @hotpath
    def update_block(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Score-and-update a ``(rounds, n)`` block, one round at a time.

        The Welford recurrence is sequential across rounds, so each round
        replays :meth:`update`'s exact operation order; the stacked
        ``(rounds, n)`` scores and verdicts equal per-round calls float
        for float.
        """
        n_rounds = values.shape[0]
        scores = np.empty(values.shape)
        flags = np.empty(values.shape, dtype=bool)
        for index in range(n_rounds):
            row_scores, row_flags = self.update(values[index])
            scores[index] = row_scores
            flags[index] = row_flags
        return scores, flags


class FleetUpdate:
    """Per-point outputs of one :meth:`FleetKernel.update` call.

    All fields are arrays over the updated columns, in column order:
    ``value`` carries the (possibly imputed) observation, ``residual`` the
    post-shift-search residual and ``detection_residual`` the pre-search
    residual that downstream anomaly scorers must consume (the same
    contract as the scalar model's ``last_detection_residual``).
    """

    __slots__ = ("value", "trend", "seasonal", "residual", "detection_residual")

    def __init__(self, value, trend, seasonal, residual, detection_residual):
        self.value = value
        self.trend = trend
        self.seasonal = seasonal
        self.residual = residual
        self.detection_residual = detection_residual


class _BatchedIterationState:
    """Columnar counterpart of one per-IRLS-iteration ``_IterationState``."""

    __slots__ = ("solver", "previous_trend", "before_previous_trend")

    def __init__(
        self,
        solver: BatchedIncrementalLDLT,
        previous_trend: np.ndarray,
        before_previous_trend: np.ndarray,
    ):
        self.solver = solver
        self.previous_trend = previous_trend
        self.before_previous_trend = before_previous_trend


class FleetKernel:
    """Columnar OneShotSTL state for ``n`` series sharing one configuration.

    Use :meth:`pack` to build a kernel from live scalar models; all members
    must share the constructor hyper-parameters (they normally come from
    one :class:`~repro.specs.PipelineSpec`), be initialized, be past the
    solver warm-up (every per-iteration solver in incremental mode, which
    holds after ``3 * HALF_BANDWIDTH / 2`` online points) and use the
    default (non-custom) initializer path.  :meth:`eligible` reports
    whether a model can currently be packed.
    """

    def __init__(self, params: dict, n_series: int):
        self.period = int(params["period"])
        self.lambda1 = float(params["lambda1"])
        self.lambda2 = float(params["lambda2"])
        self.iterations = int(params["iterations"])
        self.shift_window = int(params["shift_window"])
        self.shift_threshold = float(params["shift_threshold"])
        self.epsilon = float(params["epsilon"])
        self._n = int(n_series)
        # Scalar workspace shared by the per-series fallback paths.
        self._workspace = ContributionWorkspace(self.lambda1, self.lambda2)
        # Reusable per-update workspaces (allocated lazily, sized to n):
        # the row-index gather vector and the per-iteration pattern/rhs
        # buffers of _advance_batched.  Purely an allocation-avoidance
        # cache -- no decomposition state lives here.
        self._arange: np.ndarray | None = None
        self._pattern_values: np.ndarray | None = None
        self._rhs_values: np.ndarray | None = None
        # Round-blocked workspaces (update_block): per-iteration trend
        # histories, staged right-hand sides, per-round seasonal phases
        # and the non-final-iteration seasonal scratch row.
        self._block_hists: list[np.ndarray] | None = None
        self._block_rhs: np.ndarray | None = None
        self._block_phases: np.ndarray | None = None
        self._block_seasonal: np.ndarray | None = None
        # First-iteration pattern values are round-invariant (the raw
        # lambdas), so they are staged once per run; the reweighting
        # scratch rows avoid per-iteration temporaries.
        self._block_pattern0: np.ndarray | None = None
        self._block_weight_p: np.ndarray | None = None
        self._block_weight_q: np.ndarray | None = None

    def _rows(self) -> np.ndarray:
        """``np.arange(n_series)`` (cached; used for per-series gathers)."""
        rows = self._arange
        if rows is None or rows.size != self._n:
            self._arange = rows = np.arange(self._n)
        return rows

    # ----------------------------------------------------------- construction

    @staticmethod
    def eligible(model) -> bool:
        """Whether ``model`` is a packable, warm OneShotSTL instance."""
        if type(model) is not OneShotSTL:
            return False
        if not getattr(model, "_initialized", False) or model._initializer is not None:
            return False
        return all(
            state.solver.is_incremental for state in model._iterations_state
        )

    @classmethod
    def pack(cls, models: Sequence[OneShotSTL]) -> "FleetKernel":
        """Lift warm scalar models into one columnar kernel.

        The scalar instances are left untouched (their state is copied); a
        model that later needs to leave the batch is rebuilt with
        :meth:`extract` or :meth:`write_into`.
        """
        if not models:
            raise ValueError("pack() needs at least one model")
        reference = models[0].get_params()
        for index, model in enumerate(models):
            if not cls.eligible(model):
                raise ValueError(
                    f"model {index} is not packable (must be an initialized "
                    "OneShotSTL past solver warm-up, without a custom "
                    "initializer)"
                )
            if model.get_params() != reference:
                raise ValueError(
                    f"model {index} has different hyper-parameters; a fleet "
                    "kernel requires a uniform configuration"
                )
        kernel = cls(reference, len(models))
        kernel.seasonal_buffer = np.array(
            [model._seasonal_buffer for model in models], dtype=float
        )
        kernel.global_index = np.array(
            [model._global_index for model in models], dtype=np.int64
        )
        kernel.points_processed = np.array(
            [model._points_processed for model in models], dtype=np.int64
        )
        kernel.last_trend = np.array(
            [model._last_trend for model in models], dtype=float
        )
        kernel.last_detection_residual = np.array(
            [model._last_detection_residual for model in models], dtype=float
        )
        kernel.last_applied_shift = np.array(
            [model._last_applied_shift for model in models], dtype=np.int64
        )
        kernel.monitor = ColumnarNSigma.pack(
            [model._residual_monitor for model in models]
        )
        kernel.iteration_states = []
        for iteration in range(kernel.iterations):
            states = [model._iterations_state[iteration] for model in models]
            kernel.iteration_states.append(
                _BatchedIterationState(
                    solver=BatchedIncrementalLDLT.pack(
                        [state.solver for state in states]
                    ),
                    previous_trend=np.array(
                        [state.previous_trend for state in states], dtype=float
                    ),
                    before_previous_trend=np.array(
                        [state.before_previous_trend for state in states],
                        dtype=float,
                    ),
                )
            )
        return kernel

    @property
    def n_series(self) -> int:
        return self._n

    def get_params(self) -> dict:
        """The uniform OneShotSTL constructor parameters of the fleet."""
        return {
            "period": self.period,
            "lambda1": self.lambda1,
            "lambda2": self.lambda2,
            "iterations": self.iterations,
            "shift_window": self.shift_window,
            "shift_threshold": self.shift_threshold,
            "epsilon": self.epsilon,
        }

    # ------------------------------------------------ scalar interoperability

    def extract(self, index: int) -> OneShotSTL:
        """Materialize member ``index`` as an equivalent scalar model."""
        model = OneShotSTL(**self.get_params())
        model._initialized = True
        model._seasonal_buffer = self.seasonal_buffer[index].copy()
        model._workspace = ContributionWorkspace(self.lambda1, self.lambda2)
        model._residual_monitor = NSigma(self.shift_threshold)
        model._iterations_state = [
            _IterationState(solver=None, previous_trend=0.0, before_previous_trend=0.0)
            for _ in range(self.iterations)
        ]
        self.write_into(index, model)
        return model

    def write_into(self, index: int, model: OneShotSTL) -> None:
        """Overwrite a live scalar model's state with member ``index``.

        The model keeps its identity (and its workspace/initializer
        attributes); only the evolving decomposition state is written.
        """
        model._seasonal_buffer[:] = self.seasonal_buffer[index]
        model._global_index = int(self.global_index[index])
        model._points_processed = int(self.points_processed[index])
        model._last_trend = float(self.last_trend[index])
        model._last_detection_residual = float(
            self.last_detection_residual[index]
        )
        model._last_applied_shift = int(self.last_applied_shift[index])
        self.monitor.write_into(index, model._residual_monitor)
        for iteration, batched in enumerate(self.iteration_states):
            state = model._iterations_state[iteration]
            state.solver = batched.solver.extract(index)
            state.previous_trend = float(batched.previous_trend[index])
            state.before_previous_trend = float(
                batched.before_previous_trend[index]
            )

    def write_members(
        self, columns: np.ndarray, models: Sequence[OneShotSTL]
    ) -> None:
        """Overwrite ``models[i]`` with member ``columns[i]``, for all ``i``.

        The batched form of :meth:`write_into`: every per-series state
        array is gathered once and bulk-converted (``ndarray.tolist()``
        yields exact Python scalars), and the per-iteration solvers come
        out of :meth:`BatchedIncrementalLDLT.extract_many`.  This is the
        cohort-granular state export the durable checkpoint layer runs on:
        writing one dirty cohort of a large fleet touches only that
        cohort's columns, never the whole kernel.  Values are identical to
        repeated :meth:`write_into` calls.
        """
        columns = np.asarray(columns, dtype=np.intp)
        seasonal = self.seasonal_buffer[columns]
        global_index = self.global_index[columns].tolist()
        points_processed = self.points_processed[columns].tolist()
        last_trend = self.last_trend[columns].tolist()
        last_detection = self.last_detection_residual[columns].tolist()
        last_shift = self.last_applied_shift[columns].tolist()
        per_iteration = [
            (
                batched.solver.extract_many(columns),
                batched.previous_trend[columns].tolist(),
                batched.before_previous_trend[columns].tolist(),
            )
            for batched in self.iteration_states
        ]
        self.monitor.write_many(
            columns, [model._residual_monitor for model in models]
        )
        for position, model in enumerate(models):
            model._seasonal_buffer[:] = seasonal[position]
            model._global_index = global_index[position]
            model._points_processed = points_processed[position]
            model._last_trend = last_trend[position]
            model._last_detection_residual = last_detection[position]
            model._last_applied_shift = last_shift[position]
            for state, (solvers, previous, before) in zip(
                model._iterations_state, per_iteration
            ):
                state.solver = solvers[position]
                state.previous_trend = previous[position]
                state.before_previous_trend = before[position]

    def load(self, index: int, model: OneShotSTL) -> None:
        """Overwrite member ``index`` with a scalar model's state."""
        self.seasonal_buffer[index] = model._seasonal_buffer
        self.global_index[index] = model._global_index
        self.points_processed[index] = model._points_processed
        self.last_trend[index] = model._last_trend
        self.last_detection_residual[index] = model._last_detection_residual
        self.last_applied_shift[index] = model._last_applied_shift
        self.monitor.load(index, model._residual_monitor)
        for iteration, batched in enumerate(self.iteration_states):
            state = model._iterations_state[iteration]
            batched.solver.load(index, state.solver)
            batched.previous_trend[index] = state.previous_trend
            batched.before_previous_trend[index] = state.before_previous_trend

    def unpack(self) -> list[OneShotSTL]:
        """Materialize every member as an independent scalar model."""
        return [self.extract(index) for index in range(self._n)]

    # ------------------------------------------------------ batch membership

    def append(self, other: "FleetKernel") -> None:
        """Append the members of ``other`` (same configuration required).

        Growth is amortized: every columnar array (and the batched solvers'
        state buffers) carries hidden spare capacity that is doubled when
        exhausted, so absorbing a trickle of late-joining series one
        cohort at a time costs O(total members) instead of one full-fleet
        copy per cohort.
        """
        if other.get_params() != self.get_params():
            raise ValueError("configuration mismatch between fleet kernels")
        self.seasonal_buffer = amortized_append(
            self.seasonal_buffer, other.seasonal_buffer
        )
        self.global_index = amortized_append(self.global_index, other.global_index)
        self.points_processed = amortized_append(
            self.points_processed, other.points_processed
        )
        self.last_trend = amortized_append(self.last_trend, other.last_trend)
        self.last_detection_residual = amortized_append(
            self.last_detection_residual, other.last_detection_residual
        )
        self.last_applied_shift = amortized_append(
            self.last_applied_shift, other.last_applied_shift
        )
        self.monitor.append(other.monitor)
        for mine, theirs in zip(self.iteration_states, other.iteration_states):
            mine.solver.append(theirs.solver)
            mine.previous_trend = amortized_append(
                mine.previous_trend, theirs.previous_trend
            )
            mine.before_previous_trend = amortized_append(
                mine.before_previous_trend, theirs.before_previous_trend
            )
        self._n += other._n

    def select(self, columns: np.ndarray) -> "FleetKernel":
        """Gathered copy of the members at ``columns``."""
        sub = FleetKernel(self.get_params(), len(columns))
        sub.seasonal_buffer = self.seasonal_buffer[columns]
        sub.global_index = self.global_index[columns]
        sub.points_processed = self.points_processed[columns]
        sub.last_trend = self.last_trend[columns]
        sub.last_detection_residual = self.last_detection_residual[columns]
        sub.last_applied_shift = self.last_applied_shift[columns]
        sub.monitor = self.monitor.select(columns)
        sub.iteration_states = [
            _BatchedIterationState(
                solver=state.solver.select(columns),
                previous_trend=state.previous_trend[columns],
                before_previous_trend=state.before_previous_trend[columns],
            )
            for state in self.iteration_states
        ]
        return sub

    def assign(self, columns: np.ndarray, other: "FleetKernel") -> None:
        """Scatter the members of ``other`` back into ``columns``."""
        self.seasonal_buffer[columns] = other.seasonal_buffer
        self.global_index[columns] = other.global_index
        self.points_processed[columns] = other.points_processed
        self.last_trend[columns] = other.last_trend
        self.last_detection_residual[columns] = other.last_detection_residual
        self.last_applied_shift[columns] = other.last_applied_shift
        self.monitor.assign(columns, other.monitor)
        for mine, theirs in zip(self.iteration_states, other.iteration_states):
            mine.solver.assign(columns, theirs.solver)
            mine.previous_trend[columns] = theirs.previous_trend
            mine.before_previous_trend[columns] = theirs.before_previous_trend

    # -------------------------------------------------------------- streaming

    @hotpath
    def update(
        self, values: np.ndarray, columns: np.ndarray | None = None
    ) -> FleetUpdate:
        """Decompose one new observation per (selected) series.

        ``values`` holds one observation per updated column (NaN marks a
        missing observation and is imputed with the series' own one-step
        forecast, exactly like the scalar model).  With ``columns=None``
        every member advances; otherwise only the given columns advance
        (gather -> batched update -> scatter), so a fleet whose series
        arrive on different schedules still takes the array path.
        """
        if columns is not None:
            columns = np.asarray(columns, dtype=np.intp)
            sub = self.select(columns)
            result = sub.update(np.asarray(values, dtype=float))
            self.assign(columns, sub)
            return result

        n = self._n
        rows = self._rows()
        values = np.asarray(values, dtype=float)
        if values.shape != (n,):
            raise ValueError(f"values must have shape ({n},)")

        # Missing observations: impute with the model's own one-step
        # forecast (latest trend + seasonal buffer at the current phase).
        finite = np.isfinite(values)
        if not finite.all():
            phase = self.global_index % self.period
            forecast = self.last_trend + self.seasonal_buffer[rows, phase]
            values = np.where(finite, values, forecast)

        # Advance every series through the I IRLS iterations with one
        # batched solver append + tail solve per iteration.  The advance
        # updates the trend-pair state in place, so the pre-advance pairs
        # are copied out first for the per-series shift-search fallback --
        # only when the shift search is enabled at all.
        anchor = self.seasonal_buffer[rows, self.global_index % self.period]
        if self.shift_window > 0:
            previous_trends = [
                (state.previous_trend.copy(), state.before_previous_trend.copy())
                for state in self.iteration_states
            ]
        else:
            previous_trends = None
        trend, seasonal = self._advance_batched(values, anchor)
        residual = (values - trend) - seasonal
        detection_residual = residual

        chosen_shift = np.zeros(n, dtype=np.int64)
        if self.shift_window > 0:
            _, flagged = self.monitor.score(residual)
            if flagged.any():
                trend = trend.copy()
                seasonal = seasonal.copy()
                residual = residual.copy()
                for index in np.flatnonzero(flagged):
                    shift, chosen_trend, chosen_seasonal = (
                        self._shift_search_fallback(
                            int(index), float(values[index]), previous_trends
                        )
                    )
                    chosen_shift[index] = shift
                    trend[index] = chosen_trend
                    seasonal[index] = chosen_seasonal
                    residual[index] = (
                        float(values[index]) - chosen_trend
                    ) - chosen_seasonal
                    if shift != 0:
                        self.last_applied_shift[index] = shift

        # The monitor tracks the *detection* residual so that one corrected
        # point does not mask a persistent problem from the statistics.
        # All per-series state is written in place (never rebound) so the
        # arrays keep their append capacity (see :meth:`append`).
        self.monitor.update(detection_residual)
        position = (self.global_index + chosen_shift) % self.period
        self.seasonal_buffer[rows, position] = seasonal
        self.global_index += 1
        self.points_processed += 1
        np.copyto(self.last_trend, trend)
        np.copyto(self.last_detection_residual, detection_residual)
        return FleetUpdate(values, trend, seasonal, residual, detection_residual)

    @hotpath
    def update_block(
        self, values: np.ndarray, columns: np.ndarray | None = None
    ) -> FleetUpdate:
        """Decompose a ``(rounds, n)`` block of observations round by round.

        Semantically identical (float for float, shift searches, errors
        and all) to calling :meth:`update` once per row of ``values``, but
        all-finite stretches of rounds advance as one *staged run*: the
        solver extends skip validation and pivot guards over pre-staged
        scratch (:meth:`BatchedIncrementalLDLT.extend_solve`), the
        per-iteration trend recurrences run over a block-resident history
        instead of copying state per round, and seasonal-buffer scatters
        plus the phase counters commit once per run.  A run ends early --
        and the remaining rounds re-stage -- whenever a round contains a
        missing observation, trips the seasonality-shift search, or goes
        non-finite under the unguarded solves (that round replays on the
        guarded per-round path, reproducing the exact scalar behavior).

        The returned :class:`FleetUpdate` carries ``(rounds, n)`` arrays.
        """
        if columns is not None:
            columns = np.asarray(columns, dtype=np.intp)
            sub = self.select(columns)
            result = sub.update_block(np.asarray(values, dtype=float))
            self.assign(columns, sub)
            return result
        n = self._n
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != n:
            raise ValueError(f"values must have shape (rounds, {n})")
        n_rounds = values.shape[0]
        value_out = values.copy()
        trend_out = np.empty((n_rounds, n))
        seasonal_out = np.empty((n_rounds, n))
        residual_out = np.empty((n_rounds, n))
        detection_out = np.empty((n_rounds, n))
        clean = np.isfinite(values).all(axis=1)
        run_cap = min(self.period, _MAX_BLOCK_ROUNDS)
        row = 0
        while row < n_rounds:
            if not clean[row]:
                # Rounds with missing observations impute from live state;
                # the per-round path handles them exactly.
                result = self.update(values[row])
                value_out[row] = result.value
                trend_out[row] = result.trend
                seasonal_out[row] = result.seasonal
                residual_out[row] = result.residual
                detection_out[row] = result.detection_residual
                row += 1
                continue
            stop = row + 1
            limit = min(n_rounds, row + run_cap)
            while stop < limit and clean[stop]:
                stop += 1
            row = self._advance_block(
                values,
                row,
                stop,
                trend_out,
                seasonal_out,
                residual_out,
                detection_out,
            )
        return FleetUpdate(
            value_out, trend_out, seasonal_out, residual_out, detection_out
        )

    # ------------------------------------------------------------- internals

    @hotpath
    def _advance_block(
        self,
        values: np.ndarray,
        start: int,
        stop: int,
        trend_out: np.ndarray,
        seasonal_out: np.ndarray,
        residual_out: np.ndarray,
        detection_out: np.ndarray,
    ) -> int:
        """Advance the all-finite rounds ``[start, stop)`` as one staged run.

        Returns the index one past the last round actually advanced: the
        whole run normally, or less when a shift-search trigger or a
        non-finite solve ended the run early.  ``stop - start`` never
        exceeds ``min(period, _MAX_BLOCK_ROUNDS)``, which guarantees no
        round of the run reads a seasonal slot an earlier round wrote --
        the precondition for staging anchors and deferring the seasonal
        scatter to run end.
        """
        n = self._n
        n_rounds = stop - start
        rows = self._rows()
        period = self.period
        hists, rhs_block, phases, pattern_values = self._block_workspaces(n_rounds)
        states = self.iteration_states
        solvers = [state.solver for state in states]
        n_iterations = len(states)
        last = n_iterations - 1
        # Seed each iteration's trend history with its pre-run pair and
        # stage the shared right-hand sides and seasonal phases for the
        # whole run up front.
        for iteration in range(n_iterations):
            hist = hists[iteration]
            state = states[iteration]
            np.copyto(hist[0], state.before_previous_trend)
            np.copyto(hist[1], state.previous_trend)
            solvers[iteration].begin_extend_block(2, _PATTERN_ROWS, _PATTERN_COLS)
        phases_view = phases[:n_rounds]
        np.remainder(
            self.global_index[None, :] + np.arange(n_rounds)[:, None],
            period,
            out=phases_view,
        )
        rhs_view = rhs_block[:n_rounds]
        rhs_view[:, 0] = values[start:stop]
        np.add(
            values[start:stop],
            self.seasonal_buffer[rows[None, :], phases_view],
            out=rhs_view[:, 1],
        )
        lambda1 = self.lambda1
        lambda2 = self.lambda2
        epsilon = self.epsilon
        shift_window = self.shift_window
        monitor = self.monitor
        seasonal_scratch = self._block_seasonal
        hist_last = hists[last]
        pattern0 = self._block_pattern0
        weight_p = self._block_weight_p
        weight_q = self._block_weight_q
        pattern_values[:4] = 1.0
        for r in range(n_rounds):
            rhs_r = rhs_view[r]
            for iteration in range(n_iterations):
                if iteration == 0:
                    # next_p/next_q start each round at 1.0, so the first
                    # iteration's weights are the raw lambdas
                    # (x * 1.0 == x bit for bit) -- the round-invariant
                    # pattern0 buffer staged by _block_workspaces.
                    values_buffer = pattern0
                else:
                    # The same per-row products as the scalar sequence
                    # (multiplication commutes bitwise; rows 5/9/11/12 are
                    # copies of already-computed rows), written without
                    # intermediate temporaries.
                    np.multiply(weight_p, lambda1, out=pattern_values[4])
                    pattern_values[5] = pattern_values[4]
                    np.negative(pattern_values[4], out=pattern_values[6])
                    np.multiply(weight_q, lambda2, out=pattern_values[7])
                    np.multiply(pattern_values[7], 4.0, out=pattern_values[8])
                    pattern_values[9] = pattern_values[7]
                    np.multiply(pattern_values[7], -2.0, out=pattern_values[10])
                    pattern_values[11] = pattern_values[7]
                    pattern_values[12] = pattern_values[10]
                    values_buffer = pattern_values
                hist = hists[iteration]
                trend_row = hist[r + 2]
                if iteration == last:
                    seasonal_row = seasonal_out[start + r]
                else:
                    seasonal_row = seasonal_scratch
                solvers[iteration].extend_solve(
                    values_buffer, rhs_r, trend_row, seasonal_row
                )
                if iteration != last:
                    # The final iteration's reweighting is dead (weights
                    # reset each round), so it is skipped.  Same operation
                    # sequence as the scalar 0.5 / max(|diff|, eps), into
                    # the reused weight rows.
                    previous = hist[r + 1]
                    np.subtract(trend_row, previous, out=weight_p)
                    np.absolute(weight_p, out=weight_p)
                    np.maximum(weight_p, epsilon, out=weight_p)
                    np.divide(0.5, weight_p, out=weight_p)
                    np.multiply(previous, 2.0, out=weight_q)
                    np.subtract(trend_row, weight_q, out=weight_q)
                    np.add(weight_q, hist[r], out=weight_q)
                    np.absolute(weight_q, out=weight_q)
                    np.maximum(weight_q, epsilon, out=weight_q)
                    np.divide(0.5, weight_q, out=weight_q)
            trend_row = hist_last[r + 2]
            seasonal_row = seasonal_out[start + r]
            if not (
                math.isfinite(float(trend_row.sum()))
                and math.isfinite(float(seasonal_row.sum()))
            ):
                return self._blocked_abort_round(
                    values,
                    start,
                    r,
                    phases_view,
                    trend_out,
                    seasonal_out,
                    residual_out,
                    detection_out,
                )
            trend_out[start + r] = trend_row
            residual_row = residual_out[start + r]
            np.subtract(values[start + r], trend_row, out=residual_row)
            np.subtract(residual_row, seasonal_row, out=residual_row)
            detection_row = detection_out[start + r]
            detection_row[:] = residual_row
            if shift_window > 0:
                flagged = monitor.score(residual_row)[1]
                if flagged.any():
                    self._blocked_flagged_round(
                        values,
                        start,
                        r,
                        flagged,
                        phases_view,
                        trend_out,
                        seasonal_out,
                        residual_out,
                        hists,
                    )
                    monitor.update_stats(detection_row)
                    self._block_commit(r, hists, trend_out[start + r], detection_row)
                    return start + r + 1
            monitor.update_stats(detection_row)
        self._block_flush(start, n_rounds, phases_view, seasonal_out)
        self._block_commit(
            n_rounds - 1, hists, trend_out[stop - 1], detection_out[stop - 1]
        )
        return stop

    def _block_workspaces(
        self, n_rounds: int
    ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray, np.ndarray]:
        """(Re)size the round-blocked workspaces for an ``n_rounds`` run."""
        n = self._n
        hists = self._block_hists
        if (
            hists is None
            or len(hists) != self.iterations
            or hists[0].shape[0] < n_rounds + 2
            or hists[0].shape[1] != n
        ):
            self._block_hists = hists = [
                np.empty((n_rounds + 2, n)) for _ in range(self.iterations)
            ]
            self._block_rhs = np.empty((n_rounds, 2, n))
            self._block_phases = np.empty((n_rounds, n), dtype=np.int64)
            self._block_seasonal = np.empty(n)
        pattern_values = self._pattern_values
        if pattern_values is None or pattern_values.shape[1] != n:
            self._pattern_values = pattern_values = np.empty(
                (_PATTERN_ROWS.size, n)
            )
            self._rhs_values = np.empty((2, n))
        pattern0 = self._block_pattern0
        if pattern0 is None or pattern0.shape[1] != n:
            self._block_pattern0 = pattern0 = np.empty((_PATTERN_ROWS.size, n))
            self._block_weight_p = np.empty(n)
            self._block_weight_q = np.empty(n)
        # The first IRLS iteration's weights are the raw lambdas on every
        # round (its ``next_p``/``next_q`` are 1.0), so its pattern-value
        # buffer is filled once per run -- same scalar broadcasts as the
        # per-round fill it replaces.
        pattern0[:4] = 1.0
        pattern0[4] = self.lambda1
        pattern0[5] = self.lambda1
        pattern0[6] = -self.lambda1
        pattern0[7] = self.lambda2
        pattern0[8] = 4.0 * self.lambda2
        pattern0[9] = self.lambda2
        pattern0[10] = -2.0 * self.lambda2
        pattern0[11] = self.lambda2
        pattern0[12] = -2.0 * self.lambda2
        return hists, self._block_rhs, self._block_phases, pattern_values

    def _block_flush(
        self,
        start: int,
        count: int,
        phases_view: np.ndarray,
        seasonal_out: np.ndarray,
    ) -> None:
        """Apply the deferred seasonal scatters and counters of a run prefix.

        Within a run every series writes ``count`` distinct seasonal
        slots (runs never exceed ``period`` rounds), so one fancy scatter
        equals the per-round scatters.
        """
        if count == 0:
            return
        rows = self._rows()
        self.seasonal_buffer[rows[None, :], phases_view[:count]] = seasonal_out[
            start : start + count
        ]
        self.global_index += count
        self.points_processed += count

    def _block_commit(
        self,
        r: int,
        hists: list[np.ndarray],
        trend_row: np.ndarray,
        detection_row: np.ndarray,
    ) -> None:
        """Write the trend pairs and last-point state back after a run.

        ``r`` is the last round (run-relative) actually advanced; the
        per-iteration pairs come out of the block-resident histories,
        which are authoritative during a run.
        """
        states = self.iteration_states
        for iteration in range(len(states)):
            state = states[iteration]
            hist = hists[iteration]
            np.copyto(state.before_previous_trend, hist[r + 1])
            np.copyto(state.previous_trend, hist[r + 2])
        np.copyto(self.last_trend, trend_row)
        np.copyto(self.last_detection_residual, detection_row)

    def _blocked_flagged_round(
        self,
        values: np.ndarray,
        start: int,
        r: int,
        flagged: np.ndarray,
        phases_view: np.ndarray,
        trend_out: np.ndarray,
        seasonal_out: np.ndarray,
        residual_out: np.ndarray,
        hists: list[np.ndarray],
    ) -> None:
        """Finish flagged round ``r`` of a run on the per-series search path.

        The run's deferred rounds are flushed first (the scalar candidate
        search reads the live seasonal buffer and counters), then this
        round mirrors :meth:`update`'s flagged handling.  The run ends
        here: a chosen shift redirects this round's seasonal write, so
        later rounds must re-stage against the post-shift state.
        """
        self._block_flush(start, r, phases_view, seasonal_out)
        previous_trends = [(hist[r + 1], hist[r]) for hist in hists]
        rows = self._rows()
        chosen_shift = np.zeros(self._n, dtype=np.int64)
        trend_row = trend_out[start + r]
        seasonal_row = seasonal_out[start + r]
        residual_row = residual_out[start + r]
        values_row = values[start + r]
        states = self.iteration_states
        for index in np.flatnonzero(flagged):
            shift, chosen_trend, chosen_seasonal = self._shift_search_fallback(
                int(index), float(values_row[index]), previous_trends
            )
            chosen_shift[index] = shift
            trend_row[index] = chosen_trend
            seasonal_row[index] = chosen_seasonal
            residual_row[index] = (
                float(values_row[index]) - chosen_trend
            ) - chosen_seasonal
            if shift != 0:
                self.last_applied_shift[index] = shift
            # The fallback scattered the chosen trend pair into the
            # columnar pair arrays (stale during a run); refresh this
            # round's history row so the run-end write-back keeps the
            # chosen state (the pre-round row is unchanged by search).
            for state, hist in zip(states, hists):
                hist[r + 2][index] = state.previous_trend[index]
        position = (self.global_index + chosen_shift) % self.period
        self.seasonal_buffer[rows, position] = seasonal_row
        self.global_index += 1
        self.points_processed += 1

    def _blocked_abort_round(
        self,
        values: np.ndarray,
        start: int,
        r: int,
        phases_view: np.ndarray,
        trend_out: np.ndarray,
        seasonal_out: np.ndarray,
        residual_out: np.ndarray,
        detection_out: np.ndarray,
    ) -> int:
        """Round ``r`` went non-finite under the unguarded staged solves.

        Rolls every iteration solver back to its pre-round state, restores
        the trend pairs and deferred writes, and replays the round on the
        guarded per-round path -- reproducing the scalar path's values or
        its exact pivot error (whichever the scalar path produces).
        """
        hists = self._block_hists
        for state, hist in zip(self.iteration_states, hists):
            state.solver.rollback()
            np.copyto(state.before_previous_trend, hist[r])
            np.copyto(state.previous_trend, hist[r + 1])
        self._block_flush(start, r, phases_view, seasonal_out)
        if r > 0:
            np.copyto(self.last_trend, trend_out[start + r - 1])
            np.copyto(self.last_detection_residual, detection_out[start + r - 1])
        result = self.update(values[start + r])
        trend_out[start + r] = result.trend
        seasonal_out[start + r] = result.seasonal
        residual_out[start + r] = result.residual
        detection_out[start + r] = result.detection_residual
        return start + r + 1

    @hotpath
    def _advance_batched(
        self, values: np.ndarray, anchor: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched mirror of :func:`repro.core.oneshotstl._advance_states`.

        Every elementwise operation happens in the same order as the scalar
        code, so the results are identical float for float.
        """
        n = self._n
        epsilon = self.epsilon
        next_p = np.ones(n)
        next_q = np.ones(n)
        # The pattern/rhs workspaces are cell-major ((13, n) / (2, n)) so
        # the batched solver consumes their transposed views without a
        # transposition copy (see BatchedIncrementalLDLT.extend).
        pattern_values = self._pattern_values
        if pattern_values is None or pattern_values.shape[1] != n:
            self._pattern_values = pattern_values = np.empty(
                (_PATTERN_ROWS.size, n)
            )
            self._rhs_values = np.empty((2, n))
        rhs = self._rhs_values
        pattern_values[:4] = 1.0
        rhs[0] = values
        rhs[1] = values + anchor
        pattern_t = pattern_values.T
        rhs_t = rhs.T
        trend = seasonal = None
        for state in self.iteration_states:
            # Mirrors ContributionWorkspace.fill's steady-state pattern.
            first_weight = self.lambda1 * next_p
            second_weight = self.lambda2 * next_q
            pattern_values[4] = first_weight
            pattern_values[5] = first_weight
            pattern_values[6] = -first_weight
            pattern_values[7] = second_weight
            pattern_values[8] = 4.0 * second_weight
            pattern_values[9] = second_weight
            pattern_values[10] = -2.0 * second_weight
            pattern_values[11] = second_weight
            pattern_values[12] = -2.0 * second_weight
            solver = state.solver
            solver.extend(2, _PATTERN_ROWS, _PATTERN_COLS, pattern_t, rhs_t)
            tail = solver.tail_solution(2)
            trend = tail[:, 0]
            seasonal = tail[:, 1]
            next_p = 0.5 / np.maximum(np.abs(trend - state.previous_trend), epsilon)
            next_q = 0.5 / np.maximum(
                np.abs(
                    trend
                    - 2.0 * state.previous_trend
                    + state.before_previous_trend
                ),
                epsilon,
            )
            # In-place writes (not rebinds) keep the trend-pair arrays'
            # append capacity; update() copies the pre-advance pairs out
            # beforehand when the shift-search fallback may need them.
            np.copyto(state.before_previous_trend, state.previous_trend)
            np.copyto(state.previous_trend, trend)
        return trend, seasonal

    def _shift_search_fallback(
        self,
        index: int,
        value: float,
        previous_trends: list[tuple[np.ndarray, np.ndarray]],
    ) -> tuple[int, float, float]:
        """Scalar shift search for one flagged series.

        Reads the series' pre-advance state back out of the batched
        solvers' undo level, runs the exact scalar candidate search, and
        scatters the chosen state into the columnar arrays.  Returns
        ``(chosen_shift, trend, seasonal)``.
        """
        states = [
            _IterationState(
                solver=batched.solver.extract_pre_extend(index),
                previous_trend=float(previous[index]),
                before_previous_trend=float(before_previous[index]),
            )
            for batched, (previous, before_previous) in zip(
                self.iteration_states, previous_trends
            )
        ]
        chosen_states, trend, seasonal, shift = _search_best_shift(
            states,
            value,
            self.seasonal_buffer[index],
            int(self.global_index[index]),
            self.period,
            self.shift_window,
            int(self.points_processed[index]),
            self._workspace,
            self.epsilon,
        )
        for batched, state in zip(self.iteration_states, chosen_states):
            batched.solver.load(index, state.solver)
            batched.previous_trend[index] = state.previous_trend
            batched.before_previous_trend[index] = state.before_previous_trend
        return shift, trend, seasonal
