"""Input validation helpers.

Every public entry point of the library funnels its array and scalar
arguments through these helpers so that error messages are uniform and
raised early, before any expensive computation starts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_float_array",
    "check_positive",
    "check_positive_int",
    "check_period",
    "check_probability",
    "sliding_window_view",
]


def as_float_array(values, name: str = "values", min_length: int = 1) -> np.ndarray:
    """Convert ``values`` to a contiguous 1-D float64 array.

    Parameters
    ----------
    values:
        Any array-like of numbers.
    name:
        Argument name used in error messages.
    min_length:
        Minimum number of elements required.

    Returns
    -------
    numpy.ndarray
        A 1-D ``float64`` copy of the input.

    Raises
    ------
    ValueError
        If the input is not one dimensional, contains NaN/inf, or is
        shorter than ``min_length``.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one dimensional, got shape {array.shape}")
    if array.size < min_length:
        raise ValueError(
            f"{name} must contain at least {min_length} values, got {array.size}"
        )
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must not contain NaN or infinite values")
    return np.ascontiguousarray(array, dtype=float)


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a finite, strictly positive number."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_positive_int(value: int, name: str = "value", minimum: int = 1) -> int:
    """Validate that ``value`` is an integer greater than or equal to ``minimum``."""
    if not float(value).is_integer():
        raise ValueError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_period(period: int, series_length: int | None = None) -> int:
    """Validate a seasonal period length.

    A period must be an integer of at least 2.  When ``series_length`` is
    given, the period must also be strictly smaller than the series length
    so that at least one full cycle is observed.
    """
    period = check_positive_int(period, "period", minimum=2)
    if series_length is not None and period >= series_length:
        raise ValueError(
            f"period ({period}) must be smaller than the series length ({series_length})"
        )
    return period


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def sliding_window_view(values: np.ndarray, window: int) -> np.ndarray:
    """Return a read-only view of all length-``window`` subsequences.

    Thin wrapper around :func:`numpy.lib.stride_tricks.sliding_window_view`
    with argument validation, shared by the matrix-profile and
    subsequence-clustering anomaly detectors.
    """
    values = np.asarray(values, dtype=float)
    window = check_positive_int(window, "window")
    if window > values.size:
        raise ValueError(
            f"window ({window}) cannot exceed the series length ({values.size})"
        )
    return np.lib.stride_tricks.sliding_window_view(values, window)
