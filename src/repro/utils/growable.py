"""Amortized (capacity-doubling) growth for struct-of-arrays state.

The columnar fleet structures -- the batched solver, the fleet kernel and
the engine's per-group bookkeeping -- all grow along their leading
"series" axis when late-joining series are absorbed.  Growing with
``np.concatenate`` copies the whole array on every absorption, which turns
a trickle of one-at-a-time joins into quadratic total work.
:func:`amortized_append` implements the classic fix: the logical array is a
view into a larger base allocation, and appending reuses the spare
capacity, so a sequence of ``m`` single-row appends costs O(m) amortized
copying instead of O(m^2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["amortized_append"]

#: smallest base allocation (rows) created when capacity is first needed
_MIN_CAPACITY = 8


def _owns_prefix(view: np.ndarray, base) -> bool:
    """Whether ``view`` is exactly the leading-rows slice of ``base``."""
    return (
        base is not None
        and isinstance(base, np.ndarray)
        and base.dtype == view.dtype
        and base.ndim == view.ndim
        and base.shape[1:] == view.shape[1:]
        and base.flags.c_contiguous
        and view.flags.c_contiguous
        and base.__array_interface__["data"][0]
        == view.__array_interface__["data"][0]
    )


def amortized_append(view: np.ndarray, new_rows) -> np.ndarray:
    """Append rows to ``view`` with amortized O(len(new_rows)) copying.

    Returns the grown logical array -- a view of a base allocation that
    holds hidden spare capacity.  When ``view`` is already the leading
    slice of such a base (i.e. it came from a previous
    ``amortized_append``) and the base has room, the new rows are written
    into the spare capacity and no existing row is copied; otherwise a
    fresh base of twice the required size is allocated once.

    The caller must treat the passed-in ``view`` as invalidated (the
    returned view aliases the same memory) and must only ever mutate the
    logical array in place -- rebinding it to a fresh array silently drops
    the spare capacity (the next append degrades to one full copy, which
    is correct but no longer amortized).
    """
    new_rows = np.asarray(new_rows, dtype=view.dtype)
    if new_rows.ndim == view.ndim - 1:
        new_rows = new_rows[None, ...]
    if new_rows.shape[1:] != view.shape[1:]:
        raise ValueError(
            f"cannot append rows of shape {new_rows.shape[1:]} to an array "
            f"of row shape {view.shape[1:]}"
        )
    n = view.shape[0]
    m = new_rows.shape[0]
    base = view.base
    if not _owns_prefix(view, base) or base.shape[0] < n + m:
        capacity = max(2 * (n + m), _MIN_CAPACITY)
        base = np.empty((capacity,) + view.shape[1:], dtype=view.dtype)
        base[:n] = view
    base[n : n + m] = new_rows
    return base[: n + m]
