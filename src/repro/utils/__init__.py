"""Small shared utilities used across the OneShotSTL reproduction."""

from repro.utils.growable import amortized_append
from repro.utils.validation import (
    as_float_array,
    check_period,
    check_positive,
    check_positive_int,
    check_probability,
    sliding_window_view,
)

__all__ = [
    "amortized_append",
    "as_float_array",
    "check_period",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "sliding_window_view",
]
