"""ROC and precision-recall metrics implemented from scratch.

These are the building blocks of the range-aware metrics in
:mod:`repro.metrics.vus`; they accept optional per-sample weights, which is
how the "soft" range labels enter the computation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_curve", "roc_auc", "precision_recall_curve", "average_precision"]


def _validate(labels, scores, weights=None):
    labels = np.asarray(labels, dtype=float).ravel()
    scores = np.asarray(scores, dtype=float).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if labels.size == 0:
        raise ValueError("labels must not be empty")
    if weights is None:
        weights = np.ones_like(labels)
    else:
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.shape != labels.shape:
            raise ValueError("weights must have the same length as labels")
    if not np.all(np.isfinite(scores)):
        raise ValueError("scores must be finite")
    return labels, scores, weights


def roc_curve(labels, scores, weights=None):
    """Return ``(false_positive_rate, true_positive_rate, thresholds)``.

    ``labels`` may be soft (any value in ``[0, 1]``): a point contributes
    ``label`` to the positive mass and ``1 - label`` to the negative mass,
    which is exactly what the range-aware metrics need.
    """
    labels, scores, weights = _validate(labels, scores, weights)
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    positive_mass = labels[order] * weights[order]
    negative_mass = (1.0 - labels[order]) * weights[order]

    cumulative_tp = np.cumsum(positive_mass)
    cumulative_fp = np.cumsum(negative_mass)
    # Collapse ties: keep only the last entry of every run of equal scores.
    distinct = np.concatenate([np.diff(sorted_scores) != 0, [True]])
    cumulative_tp = cumulative_tp[distinct]
    cumulative_fp = cumulative_fp[distinct]
    thresholds = sorted_scores[distinct]

    total_positive = cumulative_tp[-1]
    total_negative = cumulative_fp[-1]
    if total_positive <= 0 or total_negative <= 0:
        raise ValueError("both positive and negative mass must be present")
    tpr = np.concatenate([[0.0], cumulative_tp / total_positive])
    fpr = np.concatenate([[0.0], cumulative_fp / total_negative])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def roc_auc(labels, scores, weights=None) -> float:
    """Area under the ROC curve (supports soft labels)."""
    fpr, tpr, _ = roc_curve(labels, scores, weights)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(tpr, fpr))


def precision_recall_curve(labels, scores, weights=None):
    """Return ``(precision, recall, thresholds)`` for decreasing thresholds."""
    labels, scores, weights = _validate(labels, scores, weights)
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    positive_mass = labels[order] * weights[order]
    negative_mass = (1.0 - labels[order]) * weights[order]

    cumulative_tp = np.cumsum(positive_mass)
    cumulative_fp = np.cumsum(negative_mass)
    distinct = np.concatenate([np.diff(sorted_scores) != 0, [True]])
    cumulative_tp = cumulative_tp[distinct]
    cumulative_fp = cumulative_fp[distinct]
    thresholds = sorted_scores[distinct]

    total_positive = cumulative_tp[-1]
    if total_positive <= 0:
        raise ValueError("positive mass must be present")
    predicted_positive = cumulative_tp + cumulative_fp
    precision = np.where(predicted_positive > 0, cumulative_tp / predicted_positive, 1.0)
    recall = cumulative_tp / total_positive
    return precision, recall, thresholds


def average_precision(labels, scores, weights=None) -> float:
    """Average precision (area under the precision-recall curve)."""
    precision, recall, _ = precision_recall_curve(labels, scores, weights)
    recall = np.concatenate([[0.0], recall])
    precision = np.concatenate([[1.0], precision])
    return float(np.sum(np.diff(recall) * precision[1:]))
