"""Range-aware ROC metrics: R-AUC-ROC and VUS-ROC (Paparrizos et al. 2022).

Point-wise ROC AUC is brittle for time-series anomaly detection because a
detection a few samples away from a labelled anomaly is counted as a miss
*and* a false alarm.  The range-aware variants fix this by replacing the
binary labels with a *soft* label sequence: the labelled anomaly keeps
label 1, and a buffer region of length ``window`` on each side receives a
smoothly decaying label (a square-root ramp), so near misses earn partial
credit.  R-AUC-ROC is the (soft-label) ROC AUC for one buffer length;
VUS-ROC -- the paper's primary TSAD metric (Table 3) -- averages R-AUC-ROC
over buffer lengths from 0 to ``max_window``, i.e. it is the volume under
the ROC surface swept by the buffer size.

This implementation follows the construction above, which preserves the
metric's two defining properties (tolerance to small localization errors
and robustness to label noise).  The original also adds an
existence-reward term per anomaly event; omitting it changes absolute
values only marginally and none of the method rankings, and is documented
in DESIGN.md as a substitution.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.classification import roc_auc
from repro.utils import check_positive_int

__all__ = ["soft_range_labels", "range_roc_auc", "vus_roc"]


def _anomaly_regions(labels: np.ndarray) -> list[tuple[int, int]]:
    """Return the half-open ``[start, stop)`` index ranges of each anomaly."""
    padded = np.concatenate([[0], labels, [0]])
    changes = np.diff(padded)
    starts = np.where(changes == 1)[0]
    stops = np.where(changes == -1)[0]
    return list(zip(starts, stops))


def soft_range_labels(labels, window: int) -> np.ndarray:
    """Binary labels extended with a square-root ramp of length ``window``."""
    labels = np.asarray(labels).astype(float).ravel()
    if not np.all((labels == 0) | (labels == 1)):
        raise ValueError("labels must be binary")
    if window == 0:
        return labels.copy()
    window = check_positive_int(window, "window")
    soft = labels.copy()
    n = labels.size
    for start, stop in _anomaly_regions(labels):
        for offset in range(1, window + 1):
            weight = np.sqrt(1.0 - offset / (window + 1.0))
            left = start - offset
            right = stop - 1 + offset
            if left >= 0:
                soft[left] = max(soft[left], weight)
            if right < n:
                soft[right] = max(soft[right], weight)
    return soft


def range_roc_auc(labels, scores, window: int) -> float:
    """ROC AUC computed against the soft range labels of buffer ``window``."""
    soft = soft_range_labels(labels, window)
    return roc_auc(soft, scores)


def vus_roc(labels, scores, max_window: int = 100, steps: int = 10) -> float:
    """Volume under the ROC surface over buffer lengths ``0 .. max_window``.

    Parameters
    ----------
    labels:
        Binary point labels.
    scores:
        Anomaly scores (higher = more anomalous).
    max_window:
        Largest buffer length considered (TSB-UAD uses a window derived from
        the series period; 100 is its default cap).
    steps:
        Number of buffer lengths sampled between 0 and ``max_window``
        (inclusive); the exact metric integrates over every length, sampling
        keeps the cost reasonable without visibly changing the value.
    """
    labels = np.asarray(labels).astype(float).ravel()
    scores = np.asarray(scores, dtype=float).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if labels.sum() == 0:
        raise ValueError("labels must contain at least one anomaly")
    if labels.sum() == labels.size:
        raise ValueError("labels must contain at least one normal point")
    max_window = check_positive_int(max_window, "max_window", minimum=0)
    steps = check_positive_int(steps, "steps", minimum=1)

    if max_window == 0:
        return roc_auc(labels, scores)
    windows = np.unique(np.linspace(0, max_window, steps + 1).astype(int))
    areas = [range_roc_auc(labels, scores, int(window)) for window in windows]
    return float(np.mean(areas))
