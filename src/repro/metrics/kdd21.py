"""Scoring rule of the KDD CUP 2021 anomaly-detection competition (Table 4).

Every series in the KDD21 dataset contains exactly one labelled anomaly
event.  A method submits the index it considers most anomalous within the
test region and is scored 1 if that index falls within a tolerance
neighbourhood of the labelled event, 0 otherwise.  The dataset-level score
is the fraction of series answered correctly.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive_int

__all__ = ["kdd21_score", "kdd21_single"]


def kdd21_single(
    scores,
    anomaly_start: int,
    anomaly_stop: int,
    tolerance: int = 100,
) -> bool:
    """Return whether the top-scoring index hits the labelled anomaly event.

    Parameters
    ----------
    scores:
        Anomaly scores for the test region of one series.
    anomaly_start, anomaly_stop:
        Half-open index range of the labelled anomaly within the same region.
    tolerance:
        Neighbourhood allowed around the labelled event (the competition
        used 100 points).
    """
    scores = np.asarray(scores, dtype=float).ravel()
    if scores.size == 0:
        raise ValueError("scores must not be empty")
    if not 0 <= anomaly_start < anomaly_stop <= scores.size:
        raise ValueError("anomaly range must lie within the scored region")
    tolerance = check_positive_int(tolerance, "tolerance", minimum=0)
    top_index = int(np.argmax(scores))
    return bool(anomaly_start - tolerance <= top_index < anomaly_stop + tolerance)


def kdd21_score(results) -> float:
    """Fraction of series answered correctly.

    ``results`` is an iterable of booleans as returned by
    :func:`kdd21_single` (or of anything truthy/falsy).
    """
    results = list(results)
    if not results:
        raise ValueError("results must not be empty")
    return float(np.mean([bool(result) for result in results]))
