"""Point-forecast error metrics (Table 5 uses MAE)."""

from __future__ import annotations

import numpy as np

from repro.utils import as_float_array

__all__ = ["mae", "mse", "rmse", "mape", "smape"]


def _paired(actual, predicted) -> tuple[np.ndarray, np.ndarray]:
    actual = as_float_array(actual, "actual")
    predicted = as_float_array(predicted, "predicted")
    if actual.shape != predicted.shape:
        raise ValueError(
            f"actual and predicted must have the same shape, got {actual.shape} and {predicted.shape}"
        )
    return actual, predicted


def mae(actual, predicted) -> float:
    """Mean absolute error."""
    actual, predicted = _paired(actual, predicted)
    return float(np.mean(np.abs(actual - predicted)))


def mse(actual, predicted) -> float:
    """Mean squared error."""
    actual, predicted = _paired(actual, predicted)
    return float(np.mean((actual - predicted) ** 2))


def rmse(actual, predicted) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(actual, predicted)))


def mape(actual, predicted, epsilon: float = 1e-8) -> float:
    """Mean absolute percentage error (values close to zero are floored)."""
    actual, predicted = _paired(actual, predicted)
    denominator = np.maximum(np.abs(actual), epsilon)
    return float(np.mean(np.abs(actual - predicted) / denominator))


def smape(actual, predicted, epsilon: float = 1e-8) -> float:
    """Symmetric mean absolute percentage error in ``[0, 2]``."""
    actual, predicted = _paired(actual, predicted)
    denominator = np.maximum((np.abs(actual) + np.abs(predicted)) / 2.0, epsilon)
    return float(np.mean(np.abs(actual - predicted) / denominator))
