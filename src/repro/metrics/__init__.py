"""Evaluation metrics used throughout the paper's evaluation section.

* forecasting errors (MAE/MSE/RMSE/sMAPE) -- Table 5, Figures 9-10,
* ROC / precision-recall AUC -- standard TSAD metrics,
* range-aware ROC AUC and VUS-ROC -- Table 3 (the paper's primary TSAD
  metric, from Paparrizos et al. 2022),
* the KDD CUP 2021 scoring rule -- Table 4.
"""

from repro.metrics.classification import (
    average_precision,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)
from repro.metrics.forecasting import mae, mape, mse, rmse, smape
from repro.metrics.kdd21 import kdd21_score
from repro.metrics.vus import range_roc_auc, vus_roc

__all__ = [
    "average_precision",
    "kdd21_score",
    "mae",
    "mape",
    "mse",
    "precision_recall_curve",
    "range_roc_auc",
    "rmse",
    "roc_auc",
    "roc_curve",
    "smape",
    "vus_roc",
]
