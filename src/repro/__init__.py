"""OneShotSTL reproduction: online seasonal-trend decomposition for TSAD and TSF.

This package is a from-scratch Python reproduction of

    He, Li, Tan, Wu, Li.  "OneShotSTL: One-Shot Seasonal-Trend Decomposition
    For Online Time Series Anomaly Detection And Forecasting."
    PVLDB 16(6), 2023.

The most common entry points are re-exported here:

* :class:`OneShotSTL` -- online decomposition with O(1) updates (the paper's
  contribution), plus :class:`JointSTL` (its batch form).
* :class:`STL`, :class:`RobustSTL`, :class:`OnlineSTL` -- the decomposition
  baselines.
* :class:`OneShotSTLDetector` / :class:`OneShotSTLForecaster` -- the
  downstream anomaly-detection and forecasting wrappers of Section 4.
* :class:`StreamingPipeline` / :class:`MultiSeriesEngine` -- decomposition
  + scoring + forecasting wired together for production-style streaming
  use, single-series and keyed-fleet form.
* :class:`DecomposerSpec`, :class:`DetectorSpec`, :class:`ForecasterSpec`,
  :class:`PipelineSpec`, :class:`EngineSpec`, :func:`build` -- the
  declarative configuration layer (:mod:`repro.specs`): JSON-able specs
  that name components by their :mod:`repro.registry` names and rebuild
  any pipeline from data alone.
* :func:`find_length` -- autocorrelation-based period detection.

Subpackages: ``core``, ``decomposition``, ``anomaly``, ``forecasting``,
``metrics``, ``datasets``, ``periodicity``, ``solvers``, ``neural``,
``streaming``, ``durability`` (checkpoint stores, write-ahead log and
crash recovery behind ``MultiSeriesEngine.open``), ``sharding``
(consistent-hash routing of the fleet across durable worker processes
with checkpoint-handoff failover), ``utils``, plus the flat ``registry``
and ``specs`` modules.  See README.md and DESIGN.md for the full map.
"""

from repro.core import JointSTL, ModifiedJointSTL, NSigma, OneShotSTL, select_lambda
from repro.decomposition import (
    STL,
    DecompositionPoint,
    DecompositionResult,
    OnlineSTL,
    RobustSTL,
)
from repro.periodicity import find_length

__version__ = "1.0.0"

__all__ = [
    "DecomposerSpec",
    "DecompositionPoint",
    "DecompositionResult",
    "DetectorSpec",
    "EngineSpec",
    "ForecasterSpec",
    "JointSTL",
    "ModifiedJointSTL",
    "MultiSeriesEngine",
    "NSigma",
    "OneShotSTL",
    "OnlineSTL",
    "PipelineSpec",
    "RobustSTL",
    "STL",
    "SeriesStatus",
    "StreamingPipeline",
    "__version__",
    "build",
    "find_length",
    "select_lambda",
]

#: names re-exported lazily from the declarative configuration layer
_SPEC_EXPORTS = (
    "DecomposerSpec",
    "DetectorSpec",
    "EngineSpec",
    "ForecasterSpec",
    "PipelineSpec",
    "build",
)


def __getattr__(name):
    """Lazily expose the heavier downstream wrappers at the package root."""
    if name in ("OneShotSTLDetector", "OnlineSTLDetector", "NSigmaDetector"):
        from repro import anomaly

        return getattr(anomaly, name)
    if name in ("OneShotSTLForecaster", "OnlineSTLForecaster"):
        from repro import forecasting

        return getattr(forecasting, name)
    if name in ("StreamingPipeline", "MultiSeriesEngine", "SeriesStatus"):
        from repro import streaming

        return getattr(streaming, name)
    if name in _SPEC_EXPORTS:
        from repro import specs

        return getattr(specs, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
