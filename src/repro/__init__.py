"""OneShotSTL reproduction: online seasonal-trend decomposition for TSAD and TSF.

This package is a from-scratch Python reproduction of

    He, Li, Tan, Wu, Li.  "OneShotSTL: One-Shot Seasonal-Trend Decomposition
    For Online Time Series Anomaly Detection And Forecasting."
    PVLDB 16(6), 2023.

The most common entry points are re-exported here:

* :class:`OneShotSTL` -- online decomposition with O(1) updates (the paper's
  contribution), plus :class:`JointSTL` (its batch form).
* :class:`STL`, :class:`RobustSTL`, :class:`OnlineSTL` -- the decomposition
  baselines.
* :class:`OneShotSTLDetector` / :class:`OneShotSTLForecaster` -- the
  downstream anomaly-detection and forecasting wrappers of Section 4.
* :class:`StreamingPipeline` -- decomposition + scoring + forecasting wired
  together for production-style streaming use.
* :func:`find_length` -- autocorrelation-based period detection.

Subpackages: ``core``, ``decomposition``, ``anomaly``, ``forecasting``,
``metrics``, ``datasets``, ``periodicity``, ``solvers``, ``neural``,
``streaming``, ``utils``.  See README.md and DESIGN.md for the full map.
"""

from repro.core import JointSTL, ModifiedJointSTL, NSigma, OneShotSTL, select_lambda
from repro.decomposition import (
    STL,
    DecompositionPoint,
    DecompositionResult,
    OnlineSTL,
    RobustSTL,
)
from repro.periodicity import find_length

__version__ = "1.0.0"

__all__ = [
    "DecompositionPoint",
    "DecompositionResult",
    "JointSTL",
    "ModifiedJointSTL",
    "NSigma",
    "OneShotSTL",
    "OnlineSTL",
    "RobustSTL",
    "STL",
    "__version__",
    "find_length",
    "select_lambda",
]


def __getattr__(name):
    """Lazily expose the heavier downstream wrappers at the package root."""
    if name in ("OneShotSTLDetector", "OnlineSTLDetector", "NSigmaDetector"):
        from repro import anomaly

        return getattr(anomaly, name)
    if name in ("OneShotSTLForecaster", "OnlineSTLForecaster"):
        from repro import forecasting

        return getattr(forecasting, name)
    if name == "StreamingPipeline":
        from repro.streaming import StreamingPipeline

        return StreamingPipeline
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
