"""DAMP: Discord-Aware Matrix Profile (Lu et al., KDD 2022).

DAMP scores each incoming subsequence by its *left discord* value -- the
z-normalized distance to the nearest neighbour entirely in the past -- but
avoids the full O(n) scan per point with two pruning ideas from the
original paper:

* **backward processing**: the past is searched in exponentially growing
  chunks starting from the most recent data; as soon as a neighbour closer
  than the best-so-far discord is found the search stops, because the
  subsequence can no longer be the top discord; and
* **forward pruning**: whenever a chunk is processed, subsequences in the
  near future that already have a close match are marked so that their own
  backward searches can start deeper in the past.

The implementation follows the published pseudocode restricted to the
univariate, single-discord-per-scan setting used in the paper's Table 4.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector
from repro.registry import register_detector
from repro.anomaly.matrix_profile import mass
from repro.utils import check_positive_int

__all__ = ["damp_scores", "DampDetector"]


def damp_scores(values: np.ndarray, window: int, train_length: int) -> np.ndarray:
    """Left-discord scores for every subsequence starting at or after ``train_length``.

    Returns an array aligned with ``values`` (zeros inside the training
    prefix); entry ``i`` holds the score of the subsequence *starting* at
    ``i``.
    """
    values = np.asarray(values, dtype=float)
    window = check_positive_int(window, "window", minimum=2)
    train_length = check_positive_int(train_length, "train_length", minimum=window)
    n = values.size
    if train_length + window > n:
        raise ValueError("train_length leaves no room for test subsequences")

    scores = np.zeros(n)
    best_so_far = 0.0
    # pruned[i] is True when subsequence i already has a known close
    # neighbour and cannot be the discord.
    pruned = np.zeros(n, dtype=bool)

    last_start = n - window
    for position in range(train_length, last_start + 1):
        if pruned[position]:
            scores[position] = scores[position - 1] if position > 0 else 0.0
            continue
        query = values[position : position + window]
        nearest = np.inf
        chunk = 2 ** int(np.ceil(np.log2(8 * window)))
        stop = position
        while stop > 0:
            start = max(0, stop - chunk)
            history = values[start : stop + window - 1]
            if history.size >= window:
                distances = mass(query, history)
                nearest = min(nearest, float(distances.min()))
            if nearest < best_so_far:
                break
            if start == 0:
                break
            stop = start
            chunk *= 2
        scores[position] = 0.0 if not np.isfinite(nearest) else nearest
        best_so_far = max(best_so_far, scores[position])

        # Forward pruning: find future subsequences that match the current
        # one closely; they cannot become discords.
        forward_stop = min(n, position + window * 8)
        forward = values[position + 1 : forward_stop]
        if forward.size >= window:
            forward_distances = mass(query, forward)
            close = np.where(forward_distances < best_so_far)[0]
            pruned[position + 1 + close] = True
    return scores


@register_detector("damp")
class DampDetector(AnomalyDetector):
    """DAMP adapter to the common detector interface.

    Scores are computed per subsequence start and mapped back to points by
    assigning each point the maximum score of the subsequences that cover
    it, so that every labelled anomalous point can receive credit.
    """

    name = "DAMP"

    def __init__(self, window: int):
        self.window = check_positive_int(window, "window", minimum=2)

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        values = np.concatenate([train, test])
        train_length = train.size
        if train_length <= self.window:
            raise ValueError("training prefix must be longer than the window")
        subsequence_scores = damp_scores(values, self.window, train_length)
        point_scores = np.zeros(values.size)
        for start in range(train_length, values.size - self.window + 1):
            score = subsequence_scores[start]
            stop = start + self.window
            segment = point_scores[start:stop]
            np.maximum(segment, score, out=segment)
        return point_scores[train_length:]
