"""Decomposition-based anomaly detectors (paper Section 4, Tables 3/4).

The STD detectors initialize an online decomposer on the training prefix,
stream the test region through it and score every point with the streaming
NSigma statistic of the decomposed residual.  Any online decomposer works;
the paper evaluates OneShotSTL and OnlineSTL, and uses plain NSigma on the
raw values as the no-decomposition control.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.anomaly.base import AnomalyDetector
from repro.registry import register_detector
from repro.anomaly.nsigma import NSigma
from repro.core.oneshotstl import OneShotSTL
from repro.decomposition.base import OnlineDecomposer
from repro.decomposition.online_stl import OnlineSTL
from repro.utils import check_positive

__all__ = [
    "NSigmaDetector",
    "STDDetector",
    "OneShotSTLDetector",
    "OnlineSTLDetector",
]


@register_detector("nsigma")
class NSigmaDetector(AnomalyDetector):
    """Streaming NSigma applied directly to the raw values (no decomposition)."""

    name = "NSigma"

    def __init__(self, threshold: float = 5.0):
        self.threshold = check_positive(threshold, "threshold")

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        scorer = NSigma(self.threshold)
        for value in train:
            scorer.update(float(value))
        return scorer.score_series(test)


class STDDetector(AnomalyDetector):
    """Online decomposition followed by NSigma scoring of the residual.

    Parameters
    ----------
    decomposer_factory:
        Callable returning a *fresh* online decomposer (the detector is
        reused across many series, so each series needs its own instance).
    threshold:
        NSigma threshold used for scoring (scores themselves are continuous;
        the threshold only matters for the boolean flag, which the
        benchmarks do not use).
    name:
        Reported method name.
    """

    def __init__(
        self,
        decomposer_factory: Callable[[], OnlineDecomposer],
        threshold: float = 5.0,
        name: str = "STD+NSigma",
    ):
        self.decomposer_factory = decomposer_factory
        self.threshold = check_positive(threshold, "threshold")
        self.name = name

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        decomposer = self.decomposer_factory()
        init_result = decomposer.initialize(train)
        scorer = NSigma(self.threshold)
        for residual_value in init_result.residual:
            scorer.update(float(residual_value))
        scores = np.empty(test.size)
        for index, value in enumerate(test):
            point = decomposer.update(float(value))
            # OneShotSTL exposes the residual it saw *before* its
            # seasonality-shift correction; that is the right quantity to
            # score (a spike must not be explained away as a shift).
            residual = getattr(decomposer, "last_detection_residual", None)
            if residual is None:
                residual = point.residual
            scores[index] = scorer.update(float(residual)).score
        return scores


@register_detector("oneshotstl")
class OneShotSTLDetector(STDDetector):
    """OneShotSTL + NSigma (the paper's proposed TSAD method).

    The default trend smoothness is deliberately stiffer (``lambda = 100``)
    than the decomposition default: for anomaly detection the trend must not
    bend around outliers, otherwise part of the anomaly is absorbed before
    the residual is scored.  The paper reaches the same effect by tuning
    ``lambda`` per dataset on the training window (Section 5.1.4); pass
    explicit values to override.
    """

    def __init__(
        self,
        period: int,
        lambda1: float = 100.0,
        lambda2: float = 100.0,
        iterations: int = 8,
        shift_window: int = 20,
        threshold: float = 5.0,
    ):
        self.period = period
        super().__init__(
            decomposer_factory=lambda: OneShotSTL(
                period,
                lambda1=lambda1,
                lambda2=lambda2,
                iterations=iterations,
                shift_window=shift_window,
            ),
            threshold=threshold,
            name="OneShotSTL",
        )


@register_detector("online_stl")
class OnlineSTLDetector(STDDetector):
    """OnlineSTL + NSigma (the main online STD baseline)."""

    def __init__(self, period: int, smoothing: float = 0.7, threshold: float = 5.0):
        self.period = period
        super().__init__(
            decomposer_factory=lambda: OnlineSTL(period, smoothing=smoothing),
            threshold=threshold,
            name="OnlineSTL",
        )
