"""Time-series anomaly detection methods and scoring wrappers.

Streaming / decomposition-based
-------------------------------
:class:`NSigma` / :class:`NSigmaDetector`
    Streaming z-score scoring (paper Algorithm 6).
:class:`STDDetector`, :class:`OneShotSTLDetector`, :class:`OnlineSTLDetector`
    Online decomposition + residual NSigma scoring (paper Section 4).

Matrix-profile based
--------------------
:func:`matrix_profile`, :class:`Stompi`, :class:`StompDetector`
    Batch and incremental matrix profile (STOMP / STOMPI).
:class:`DampDetector`
    Discord-aware matrix profile with pruning (DAMP).
:class:`NormaDetector`, :class:`SandDetector`
    Normal-model clustering methods (batch and streaming).
:class:`PrefilteredDampDetector`
    The paper's STD + DAMP combination (Table 4).

Learned proxy
-------------
:class:`AutoencoderDetector`
    Window autoencoder standing in for the GPU deep-learning baselines.
"""

from repro.anomaly.autoencoder import AutoencoderDetector
from repro.anomaly.base import AnomalyDetector, score_anomaly_series
from repro.anomaly.damp import DampDetector, damp_scores
from repro.anomaly.matrix_profile import StompDetector, Stompi, mass, matrix_profile
from repro.anomaly.norma import NormaDetector, kmeans
from repro.anomaly.nsigma import NSigma, NSigmaVerdict
from repro.anomaly.prefilter import PrefilteredDampDetector
from repro.anomaly.sand import SandDetector
from repro.anomaly.std_detector import (
    NSigmaDetector,
    OneShotSTLDetector,
    OnlineSTLDetector,
    STDDetector,
)

__all__ = [
    "AnomalyDetector",
    "AutoencoderDetector",
    "DampDetector",
    "NSigma",
    "NSigmaDetector",
    "NSigmaVerdict",
    "NormaDetector",
    "OneShotSTLDetector",
    "OnlineSTLDetector",
    "PrefilteredDampDetector",
    "STDDetector",
    "SandDetector",
    "StompDetector",
    "Stompi",
    "damp_scores",
    "kmeans",
    "mass",
    "matrix_profile",
    "score_anomaly_series",
]
