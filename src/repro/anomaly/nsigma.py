"""Streaming NSigma anomaly scorer (paper Algorithm 6).

The implementation lives in :mod:`repro.core.nsigma` because OneShotSTL's
seasonality-shift handling depends on it; it is re-exported here because it
is also a standalone TSAD baseline (Tables 3 and 4).
"""

from repro.core.nsigma import NSigma, NSigmaVerdict

__all__ = ["NSigma", "NSigmaVerdict"]
