"""Matrix-profile computations: MASS, STOMP and the streaming STOMPI.

The matrix profile stores, for every length-``window`` subsequence, the
z-normalized Euclidean distance to its nearest non-trivial neighbour.
Discords (subsequences with a *large* profile value) are anomalies, which
is the principle behind the NormA, SAND, STOMPI and DAMP baselines of
Tables 3 and 4.

Implemented from scratch:

* :func:`mass` -- FFT-based distance profile of one query against a series
  (Mueen's Algorithm for Similarity Search).
* :func:`matrix_profile` -- batch STOMP: all distance profiles with the
  incremental dot-product recurrence, O(n^2) overall.
* :class:`Stompi` -- the incremental variant that appends points online and
  updates the profile in O(n) per point, used as the online TSAD baseline.
* :class:`StompDetector` -- adapter to the common detector interface; scores
  each point with the left-profile value (distance to the nearest *earlier*
  neighbour) of the subsequence ending at that point.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector
from repro.registry import register_detector
from repro.utils import as_float_array, check_positive_int, sliding_window_view

__all__ = ["mass", "matrix_profile", "Stompi", "StompDetector"]

_EPSILON = 1e-10


def _sliding_mean_std(values: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    cumulative = np.concatenate([[0.0], np.cumsum(values)])
    cumulative_squares = np.concatenate([[0.0], np.cumsum(values ** 2)])
    sums = cumulative[window:] - cumulative[:-window]
    sum_squares = cumulative_squares[window:] - cumulative_squares[:-window]
    means = sums / window
    variances = np.maximum(sum_squares / window - means ** 2, 0.0)
    return means, np.sqrt(variances)


def mass(query: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Z-normalized Euclidean distance of ``query`` to every subsequence of ``values``."""
    query = as_float_array(query, "query", min_length=2)
    values = as_float_array(values, "values", min_length=query.size)
    window = query.size
    n = values.size

    query_mean = query.mean()
    query_std = query.std()
    means, stds = _sliding_mean_std(values, window)

    size = int(2 ** np.ceil(np.log2(n + window)))
    value_spectrum = np.fft.rfft(values, size)
    query_spectrum = np.fft.rfft(query[::-1], size)
    cross = np.fft.irfft(value_spectrum * query_spectrum, size)
    dot_products = cross[window - 1 : n]

    if query_std < _EPSILON:
        # A constant query: fall back to the distance between the means.
        return np.sqrt(window * np.abs(means - query_mean))
    stds_safe = np.where(stds < _EPSILON, _EPSILON, stds)
    correlation = (dot_products - window * means * query_mean) / (
        window * stds_safe * query_std
    )
    correlation = np.clip(correlation, -1.0, 1.0)
    distances = np.sqrt(2.0 * window * (1.0 - correlation))
    # Constant subsequences carry no shape information; give them the
    # maximum distance unless the query is constant too.
    distances = np.where(stds < _EPSILON, np.sqrt(2.0 * window), distances)
    return distances


def matrix_profile(
    values,
    window: int,
    exclusion: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batch STOMP matrix profile.

    Returns ``(profile, indices)`` where ``profile[i]`` is the distance from
    subsequence ``i`` to its nearest neighbour outside the exclusion zone and
    ``indices[i]`` is that neighbour's position.
    """
    values = as_float_array(values, "values", min_length=4)
    window = check_positive_int(window, "window", minimum=2)
    if window > values.size // 2:
        raise ValueError("window must be at most half the series length")
    if exclusion is None:
        exclusion = max(1, window // 2)

    subsequences = sliding_window_view(values, window)
    count = subsequences.shape[0]
    means, stds = _sliding_mean_std(values, window)
    stds_safe = np.where(stds < _EPSILON, _EPSILON, stds)

    profile = np.full(count, np.inf)
    indices = np.zeros(count, dtype=int)

    first_products = np.array(
        [np.dot(values[: window], subsequences[j]) for j in range(count)]
    )
    products = first_products.copy()
    for i in range(count):
        if i > 0:
            products[1:] = (
                products[:-1]
                - values[: count - 1] * values[i - 1]
                + values[window : window + count - 1] * values[i + window - 1]
            )
            products[0] = np.dot(values[i : i + window], subsequences[0])
        correlation = (products - window * means * means[i]) / (
            window * stds_safe * stds_safe[i]
        )
        correlation = np.clip(correlation, -1.0, 1.0)
        distances = np.sqrt(2.0 * window * (1.0 - correlation))
        low = max(0, i - exclusion)
        high = min(count, i + exclusion + 1)
        distances[low:high] = np.inf
        best = int(np.argmin(distances))
        if distances[best] < profile[i]:
            profile[i] = distances[best]
            indices[i] = best
    return profile, indices


class Stompi:
    """Incremental (streaming) matrix profile over an append-only series.

    ``append`` adds one value and returns the *left* profile value of the
    newest subsequence -- its distance to the nearest neighbour entirely in
    the past -- which is the natural online anomaly score.
    """

    def __init__(self, initial_values, window: int, exclusion: int | None = None):
        initial_values = as_float_array(initial_values, "initial_values", min_length=4)
        self.window = check_positive_int(window, "window", minimum=2)
        if self.window > initial_values.size // 2:
            raise ValueError("window must be at most half the initialization length")
        self.exclusion = exclusion if exclusion is not None else max(1, self.window // 2)
        self._values = list(initial_values)
        profile, _ = matrix_profile(initial_values, self.window, self.exclusion)
        self._profile = list(profile)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    @property
    def profile(self) -> np.ndarray:
        return np.asarray(self._profile)

    def append(self, value: float) -> float:
        """Add one point; return the left-profile value of the new subsequence."""
        self._values.append(float(value))
        values = np.asarray(self._values)
        query = values[-self.window :]
        distances = mass(query, values[:-1])
        new_index = values.size - self.window
        keep = max(0, new_index - self.exclusion)
        distances = distances[:keep]
        if distances.size == 0:
            score = float(np.sqrt(2.0 * self.window))
        else:
            score = float(distances.min())
            # The new subsequence may also become the nearest neighbour of
            # older subsequences, shrinking their profile values.
            improved = np.minimum(self._profile[:keep], distances)
            self._profile[:keep] = list(improved)
        self._profile.append(score)
        return score


@register_detector("stomp")
class StompDetector(AnomalyDetector):
    """STOMPI adapter to the common detector interface.

    The training prefix seeds the profile; every test point is scored with
    the left-profile value of the subsequence that ends at it.
    """

    name = "STOMPI"

    def __init__(self, window: int, exclusion: int | None = None):
        self.window = check_positive_int(window, "window", minimum=2)
        self.exclusion = exclusion

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        if self.window > train.size // 2:
            raise ValueError("window must be at most half the training length")
        streamer = Stompi(train, self.window, self.exclusion)
        scores = np.empty(test.size)
        for index, value in enumerate(test):
            scores[index] = streamer.append(float(value))
        return scores
