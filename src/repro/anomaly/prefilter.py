"""STD + DAMP pre-filtering combos (paper Table 4, bottom block).

On KDD21 the matrix-profile method DAMP is the most accurate detector but
takes hours, while the STD detectors are fast but weaker on non-seasonal
series.  The paper combines them: the cheap STD detector scores every test
point, only the top-ranked fraction (1 %) is re-scored by DAMP, and the
final ranking uses DAMP's scores for those candidates.  This cuts DAMP's
cost by roughly the filtering factor with negligible accuracy loss.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector
from repro.anomaly.matrix_profile import mass
from repro.utils import check_positive_int

__all__ = ["PrefilteredDampDetector"]


# repro: allow[REG001] wraps a live prefilter detector instance (not a
# primitive parameter), so it cannot be built from a spec; it is composed
# explicitly by the Table 4 benchmark harness instead.
class PrefilteredDampDetector(AnomalyDetector):
    """Use a cheap detector to select candidates, then re-score them with DAMP.

    Parameters
    ----------
    prefilter:
        Any detector implementing :class:`~repro.anomaly.base.AnomalyDetector`;
        its scores select the candidate points.
    window:
        Subsequence length used for the DAMP-style left-discord re-scoring.
    top_fraction:
        Fraction of test points passed to the expensive stage (paper: 0.01).
    """

    def __init__(self, prefilter: AnomalyDetector, window: int, top_fraction: float = 0.01):
        self.prefilter = prefilter
        self.window = check_positive_int(window, "window", minimum=2)
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must lie in (0, 1]")
        self.top_fraction = top_fraction
        self.name = f"{prefilter.name}+DAMP"

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        values = np.concatenate([train, test])
        coarse_scores = self.prefilter.detect(train, test)

        candidate_count = max(1, int(np.ceil(self.top_fraction * test.size)))
        candidates = np.argsort(coarse_scores)[::-1][:candidate_count]

        refined = np.zeros(test.size)
        for candidate in np.sort(candidates):
            absolute_end = train.size + candidate + 1
            start = absolute_end - self.window
            if start < 0:
                continue
            query = values[start:absolute_end]
            history = values[:start]
            if history.size < self.window:
                continue
            distances = mass(query, history)
            refined[candidate] = float(distances.min())
        return refined
