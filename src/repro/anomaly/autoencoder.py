"""Autoencoder anomaly detector (proxy for the paper's deep baselines).

The paper compares against three GPU-trained deep detectors (LSTM-VAE,
USAD, TranAD).  Without a GPU or a deep-learning framework in this offline
environment, this module provides the closest classical equivalent built on
the in-repo :mod:`repro.neural` substrate: a window autoencoder trained on
the anomaly-free prefix whose reconstruction error is the anomaly score.
It exercises the same code path as the deep baselines -- train on the
prefix, slide over the test region, score each point -- and shows the same
qualitative behaviour (good on point/collective outliers, weaker on subtle
pattern drift).  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector
from repro.registry import register_detector
from repro.neural import MLPRegressor
from repro.utils import check_positive_int, sliding_window_view

__all__ = ["AutoencoderDetector"]


@register_detector("autoencoder")
class AutoencoderDetector(AnomalyDetector):
    """Window autoencoder with reconstruction-error scoring.

    Parameters
    ----------
    window:
        Input window length.
    bottleneck:
        Size of the compression layer.
    epochs / learning_rate:
        Training hyper-parameters of the underlying MLP.
    sample_stride:
        Stride used when building training windows (controls training cost).
    """

    name = "Autoencoder"

    def __init__(
        self,
        window: int,
        bottleneck: int = 8,
        hidden: int = 64,
        epochs: int = 60,
        learning_rate: float = 1e-3,
        sample_stride: int = 2,
        seed: int = 0,
    ):
        self.window = check_positive_int(window, "window", minimum=4)
        self.bottleneck = check_positive_int(bottleneck, "bottleneck")
        self.hidden = check_positive_int(hidden, "hidden")
        self.epochs = check_positive_int(epochs, "epochs")
        self.learning_rate = learning_rate
        self.sample_stride = check_positive_int(sample_stride, "sample_stride")
        self.seed = int(seed)

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        if self.window >= train.size:
            raise ValueError("window must be smaller than the training prefix")

        mean = train.mean()
        scale = train.std() if train.std() > 1e-8 else 1.0
        normalized_train = (train - mean) / scale

        windows = sliding_window_view(normalized_train, self.window)[:: self.sample_stride]
        model = MLPRegressor(
            input_size=self.window,
            output_size=self.window,
            hidden_sizes=(self.hidden, self.bottleneck, self.hidden),
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=min(64, windows.shape[0]),
            seed=self.seed,
        )
        model.fit(windows, windows)

        values = np.concatenate([train, test])
        normalized = (values - mean) / scale
        scores = np.zeros(test.size)
        for index in range(test.size):
            end = train.size + index + 1
            window_values = normalized[end - self.window : end]
            reconstruction = model.predict(window_values[None, :])[0]
            scores[index] = float(np.mean((reconstruction - window_values) ** 2))
        return scores
