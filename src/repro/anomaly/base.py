"""Common interface of the anomaly detectors.

Every detector -- whether it is a batch matrix-profile method, a streaming
decomposition-based method or a trained neural proxy -- exposes the same
entry point::

    scores = detector.detect(train_values, test_values)

``train_values`` is the anomaly-free prefix used for initialization or
training (the paper's setting for the TSB-UAD and KDD21 experiments) and
``scores`` contains one anomaly score per *test* point, higher meaning more
anomalous.  Having a single signature is what lets the Table 3/4 benchmark
harnesses iterate over heterogeneous methods.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.datasets.types import AnomalySeries
from repro.utils import as_float_array

__all__ = ["AnomalyDetector", "score_anomaly_series"]


class AnomalyDetector(ABC):
    """A univariate time-series anomaly detector."""

    #: human-readable name used in benchmark tables
    name: str = "detector"

    @abstractmethod
    def detect(self, train_values, test_values) -> np.ndarray:
        """Return one anomaly score per test point (higher = more anomalous)."""

    def _validate(self, train_values, test_values) -> tuple[np.ndarray, np.ndarray]:
        train = as_float_array(train_values, "train_values", min_length=2)
        test = as_float_array(test_values, "test_values", min_length=1)
        return train, test

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def score_anomaly_series(detector: AnomalyDetector, series: AnomalySeries) -> np.ndarray:
    """Score the test region of a labelled series with ``detector``."""
    return detector.detect(series.train_values, series.test_values)
