"""NormA: normal-model-based subsequence anomaly detection (Boniol et al. 2021).

NormA is the strongest *batch* baseline of the paper's Table 3.  It builds a
weighted set of "normal" patterns by clustering z-normalized subsequences of
the series, then scores every subsequence by its weighted distance to those
patterns.  The original uses a hierarchical/k-Shape-style clustering; this
reproduction uses Lloyd's k-means on z-normalized subsequences (documented
substitution), which preserves the method's behaviour: recurring shapes end
up represented by some centroid and rare shapes end up far from all of them.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector
from repro.registry import register_detector
from repro.utils import check_positive_int, sliding_window_view

__all__ = ["kmeans", "NormaDetector"]


def _znormalize_rows(matrix: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    means = matrix.mean(axis=1, keepdims=True)
    stds = matrix.std(axis=1, keepdims=True)
    stds = np.where(stds < epsilon, 1.0, stds)
    return (matrix - means) / stds


def kmeans(
    points: np.ndarray,
    clusters: int,
    iterations: int = 30,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means.  Returns ``(centroids, assignments)``."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    clusters = check_positive_int(clusters, "clusters")
    clusters = min(clusters, points.shape[0])
    rng = np.random.default_rng(seed)
    centroids = points[rng.choice(points.shape[0], size=clusters, replace=False)].copy()
    assignments = np.zeros(points.shape[0], dtype=int)
    for _ in range(check_positive_int(iterations, "iterations")):
        distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments) and _ > 0:
            break
        assignments = new_assignments
        for cluster in range(clusters):
            members = points[assignments == cluster]
            if members.size:
                centroids[cluster] = members.mean(axis=0)
            else:
                centroids[cluster] = points[rng.integers(points.shape[0])]
    return centroids, assignments


@register_detector("norma")
class NormaDetector(AnomalyDetector):
    """Normal-model scoring of subsequences.

    Parameters
    ----------
    window:
        Subsequence length (typically the detected period or a fraction of it).
    clusters:
        Number of normal patterns kept in the model.
    sample_stride:
        Stride used when sampling subsequences for clustering (keeps the
        clustering cost modest on long series).
    """

    name = "NormA"

    def __init__(self, window: int, clusters: int = 6, sample_stride: int | None = None, seed: int = 0):
        self.window = check_positive_int(window, "window", minimum=4)
        self.clusters = check_positive_int(clusters, "clusters")
        self.sample_stride = sample_stride
        self.seed = int(seed)

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        values = np.concatenate([train, test])
        if self.window >= train.size:
            raise ValueError("window must be smaller than the training prefix")

        stride = self.sample_stride or max(1, self.window // 4)
        train_subsequences = sliding_window_view(train, self.window)[::stride]
        normalized_train = _znormalize_rows(train_subsequences)
        centroids, assignments = kmeans(
            normalized_train, self.clusters, seed=self.seed
        )
        cluster_sizes = np.bincount(assignments, minlength=centroids.shape[0]).astype(float)
        weights = cluster_sizes / cluster_sizes.sum()

        all_subsequences = sliding_window_view(values, self.window)
        normalized = _znormalize_rows(all_subsequences)
        distances = np.linalg.norm(
            normalized[:, None, :] - centroids[None, :, :], axis=2
        )
        # Weighted distance to the normal model: frequent patterns pull the
        # score down more than rare ones.
        subsequence_scores = (distances * weights[None, :]).min(axis=1) + distances.min(axis=1)

        point_scores = np.zeros(values.size)
        counts = np.zeros(values.size)
        for start, score in enumerate(subsequence_scores):
            point_scores[start : start + self.window] += score
            counts[start : start + self.window] += 1
        point_scores = point_scores / np.maximum(counts, 1.0)
        return point_scores[train.size :]
