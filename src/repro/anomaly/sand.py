"""SAND: streaming subsequence anomaly detection (Boniol et al., VLDB 2021).

SAND maintains NormA's weighted normal model *online*: the stream is
consumed in batches, each batch's subsequences are clustered, and the batch
clusters are merged into the running model with weights that decay older
evidence.  Scoring is identical to NormA (weighted distance to the normal
patterns), so the method adapts to slow distribution drift while still
flagging subsequences far from every learned pattern.

Documented substitution: the original clusters with k-Shape and merges
centroids via shape-based distance; this reproduction uses k-means on
z-normalized subsequences for both steps, consistent with the NormA
implementation it extends.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector
from repro.registry import register_detector
from repro.anomaly.norma import _znormalize_rows, kmeans
from repro.utils import check_positive_int, sliding_window_view

__all__ = ["SandDetector"]


@register_detector("sand")
class SandDetector(AnomalyDetector):
    """Streaming normal-model anomaly detection.

    Parameters
    ----------
    window:
        Subsequence length.
    clusters:
        Number of normal patterns maintained.
    batch_size:
        Number of points accumulated before the model is updated.
    decay:
        Weight retained by the existing model when a batch is merged
        (0 < decay < 1; higher = slower adaptation).
    """

    name = "SAND"

    def __init__(
        self,
        window: int,
        clusters: int = 6,
        batch_size: int | None = None,
        decay: float = 0.7,
        seed: int = 0,
    ):
        self.window = check_positive_int(window, "window", minimum=4)
        self.clusters = check_positive_int(clusters, "clusters")
        self.batch_size = batch_size
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie strictly between 0 and 1")
        self.decay = decay
        self.seed = int(seed)

    # ------------------------------------------------------------------ API

    def detect(self, train_values, test_values) -> np.ndarray:
        train, test = self._validate(train_values, test_values)
        if self.window >= train.size:
            raise ValueError("window must be smaller than the training prefix")
        batch_size = self.batch_size or max(4 * self.window, 256)

        centroids, weights = self._fit_model(train)
        scores = np.zeros(test.size)
        history = list(train[-(self.window - 1) :])
        pending: list[float] = []
        pending_start = 0

        for index, value in enumerate(test):
            history.append(float(value))
            pending.append(float(value))
            window_values = np.asarray(history[-self.window :])
            scores[index] = self._score_subsequence(window_values, centroids, weights)
            if len(pending) >= batch_size:
                batch_values = np.asarray(
                    history[-(len(pending) + self.window - 1) :]
                )
                centroids, weights = self._merge_batch(batch_values, centroids, weights)
                pending = []
                pending_start = index + 1
        del pending_start
        return scores

    # ------------------------------------------------------------- internals

    def _fit_model(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        stride = max(1, self.window // 4)
        subsequences = sliding_window_view(values, self.window)[::stride]
        normalized = _znormalize_rows(subsequences)
        centroids, assignments = kmeans(normalized, self.clusters, seed=self.seed)
        sizes = np.bincount(assignments, minlength=centroids.shape[0]).astype(float)
        weights = sizes / sizes.sum()
        return centroids, weights

    def _merge_batch(
        self, batch_values: np.ndarray, centroids: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if batch_values.size < 2 * self.window:
            return centroids, weights
        new_centroids, new_weights = self._fit_model(batch_values)
        merged_centroids = []
        merged_weights = []
        for centroid, weight in zip(centroids, weights):
            merged_centroids.append(centroid)
            merged_weights.append(self.decay * weight)
        for centroid, weight in zip(new_centroids, new_weights):
            merged_centroids.append(centroid)
            merged_weights.append((1.0 - self.decay) * weight)
        merged_centroids = np.asarray(merged_centroids)
        merged_weights = np.asarray(merged_weights)
        # Re-cluster the merged patterns back to the configured model size,
        # carrying the weights along with their nearest representative.
        if merged_centroids.shape[0] > self.clusters:
            representatives, assignments = kmeans(
                merged_centroids, self.clusters, seed=self.seed + 1
            )
            weights_out = np.zeros(representatives.shape[0])
            for assignment, weight in zip(assignments, merged_weights):
                weights_out[assignment] += weight
            total = weights_out.sum()
            if total > 0:
                weights_out = weights_out / total
            return representatives, weights_out
        return merged_centroids, merged_weights / merged_weights.sum()

    def _score_subsequence(
        self, window_values: np.ndarray, centroids: np.ndarray, weights: np.ndarray
    ) -> float:
        if window_values.size < self.window:
            return 0.0
        std = window_values.std()
        normalized = (window_values - window_values.mean()) / (std if std > 1e-8 else 1.0)
        distances = np.linalg.norm(centroids - normalized[None, :], axis=1)
        return float((distances * weights).min() + distances.min())
