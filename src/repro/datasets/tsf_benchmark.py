"""Long-horizon forecasting datasets (substitute for Table 5's data).

The paper evaluates forecasting on six public datasets popularized by
Informer/FEDformer: ETTm2, Electricity, Exchange, Traffic, Weather and
Illness, with horizons {96, 192, 336, 720} (Illness: {24, 36, 48, 60}).
The generators below reproduce each dataset's structural profile -- sampling
period, strength and shape of seasonality, trend behaviour, noise level --
so that the qualitative conclusions (STD forecasters excel on strongly
seasonal data such as Traffic/Electricity and fall behind on weakly
seasonal data such as Exchange/Illness) carry over.  Splits follow the
Informer convention (70 % train / 10 % validation / 20 % test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import make_seasonal
from repro.datasets.types import ForecastSeries
from repro.utils import check_positive_int

__all__ = ["TSF_DATASETS", "TSFProfile", "make_tsf_dataset", "make_tsf_benchmark"]


@dataclass(frozen=True)
class TSFProfile:
    """Generation profile of one forecasting dataset."""

    name: str
    period: int
    length: int
    seasonal_strength: float
    weekly_strength: float
    trend_style: str  # "linear", "walk", or "flat"
    noise: float
    shape: str
    horizons: tuple[int, ...]


#: Profiles of the six paper datasets.
TSF_DATASETS: tuple[TSFProfile, ...] = (
    TSFProfile("ETTm2", 96, 96 * 160, 1.0, 0.3, "walk", 0.25, "mixed", (96, 192, 336, 720)),
    TSFProfile("Electricity", 24, 24 * 700, 1.2, 0.5, "linear", 0.20, "sharp", (96, 192, 336, 720)),
    TSFProfile("Exchange", 30, 7000, 0.05, 0.0, "walk", 0.08, "sine", (96, 192, 336, 720)),
    TSFProfile("Traffic", 24, 24 * 700, 1.5, 0.6, "flat", 0.15, "sharp", (96, 192, 336, 720)),
    TSFProfile("Weather", 144, 144 * 120, 0.8, 0.1, "walk", 0.30, "sine", (96, 192, 336, 720)),
    TSFProfile("Illness", 52, 52 * 18, 0.7, 0.0, "walk", 0.25, "mixed", (24, 36, 48, 60)),
)

_PROFILES_BY_NAME = {profile.name: profile for profile in TSF_DATASETS}


def make_tsf_dataset(name: str, seed: int = 0) -> ForecastSeries:
    """Generate one forecasting dataset by profile name."""
    if name not in _PROFILES_BY_NAME:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_PROFILES_BY_NAME)}")
    profile = _PROFILES_BY_NAME[name]
    rng = np.random.default_rng(hash((name, seed)) % (2**32))
    length = check_positive_int(profile.length, "length")
    time = np.arange(length)

    seasonal = profile.seasonal_strength * make_seasonal(
        length, profile.period, shape=profile.shape
    )
    if profile.weekly_strength > 0:
        weekly_period = 7 * profile.period
        seasonal = seasonal + profile.weekly_strength * make_seasonal(
            length, weekly_period, shape="sine"
        )

    if profile.trend_style == "linear":
        trend = 0.0004 * time
    elif profile.trend_style == "walk":
        trend = np.cumsum(rng.normal(0.0, 0.01, size=length))
        trend = trend - trend.mean()
    else:
        trend = np.zeros(length)

    noise = rng.normal(0.0, profile.noise, size=length)
    values = trend + seasonal + noise
    # The paper treats multi-seasonal data as a single seasonal sequence whose
    # period is the *longest* cycle (Section 2.1), so when a weekly component
    # is present the reported period is the weekly one.
    effective_period = 7 * profile.period if profile.weekly_strength > 0 else profile.period
    return ForecastSeries(
        name=profile.name,
        values=values,
        period=effective_period,
        horizons=profile.horizons,
        metadata={"profile": profile, "base_period": profile.period},
    )


def make_tsf_benchmark(seed: int = 0, names: tuple[str, ...] | None = None) -> dict[str, ForecastSeries]:
    """Generate the whole forecasting benchmark as ``{name: series}``."""
    if names is None:
        names = tuple(profile.name for profile in TSF_DATASETS)
    return {name: make_tsf_dataset(name, seed=seed) for name in names}
