"""KDD CUP 2021-like dataset (substitute for Table 4's data).

The KDD CUP 2021 TSAD competition dataset contains 250 univariate series;
each has an anomaly-free training prefix and exactly one anomaly event in
the test region, and methods are scored by whether their single most
anomalous test point falls within a tolerance window of the event.  This
generator produces series with the same contract: varied periods and
shapes, a clean training prefix whose length is included in the record, and
one injected anomaly event of a randomly chosen type.  A sizeable fraction
of series is made non-seasonal on purpose -- the paper points out that STD
methods underperform matrix-profile methods on KDD21 precisely because many
of its series have no seasonal structure, and this generator preserves that
contrast.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.anomalies import (
    inject_collective,
    inject_dip,
    inject_flatline,
    inject_pattern_change,
    inject_spike,
)
from repro.datasets.synthetic import make_seasonal
from repro.datasets.types import AnomalySeries
from repro.utils import check_positive_int

__all__ = ["make_kdd21_like"]

_ANOMALY_KINDS = ("spike", "dip", "collective", "pattern", "flat")


def _make_single(series_index: int, seed: int, nonseasonal_fraction: float) -> AnomalySeries:
    rng = np.random.default_rng(seed * 100003 + series_index)
    period = int(rng.choice([50, 100, 128, 200, 250, 300]))
    cycles = int(rng.integers(12, 20))
    length = period * cycles
    time = np.arange(length)

    seasonal_strength = 1.0
    if rng.random() < nonseasonal_fraction:
        seasonal_strength = 0.0
    shape = str(rng.choice(["sine", "mixed", "sharp"]))
    seasonal = seasonal_strength * make_seasonal(length, period, shape=shape)
    trend = 0.001 * rng.normal() * time + 0.3 * np.sin(2 * np.pi * time / (length / 1.3))
    if seasonal_strength == 0.0:
        # Non-seasonal series: a structured random walk, the hard case for
        # decomposition-based detectors.
        trend = np.cumsum(rng.normal(0.0, 0.05, size=length))
    noise = rng.normal(0.0, 0.1, size=length)
    values = trend + seasonal + noise

    train_length = max(int(length * rng.uniform(0.35, 0.5)), 2 * period + 10)
    anomaly_start = int(rng.integers(train_length + period, length - period))
    anomaly_length = int(rng.integers(max(3, period // 20), max(8, period // 3)))
    kind = _ANOMALY_KINDS[int(rng.integers(len(_ANOMALY_KINDS)))]
    if kind == "spike":
        values, labels = inject_spike(values, anomaly_start, magnitude=float(rng.uniform(4, 8)))
    elif kind == "dip":
        values, labels = inject_dip(values, anomaly_start, magnitude=float(rng.uniform(4, 8)))
    elif kind == "collective":
        values, labels = inject_collective(
            values, anomaly_start, anomaly_length, magnitude=float(rng.uniform(2, 4))
        )
    elif kind == "pattern":
        values, labels = inject_pattern_change(
            values, anomaly_start, max(anomaly_length, period // 3), period,
            stretch=float(rng.uniform(1.5, 3.0)),
        )
    else:
        values, labels = inject_flatline(values, anomaly_start, max(anomaly_length, 10))

    return AnomalySeries(
        name=f"KDD21-like-{series_index:03d}",
        values=values,
        labels=labels,
        train_length=train_length,
        period=period,
    )


def make_kdd21_like(
    count: int = 250,
    seed: int = 0,
    nonseasonal_fraction: float = 0.4,
) -> list[AnomalySeries]:
    """Generate ``count`` single-anomaly series with KDD21 semantics."""
    count = check_positive_int(count, "count")
    if not 0.0 <= nonseasonal_fraction <= 1.0:
        raise ValueError("nonseasonal_fraction must lie in [0, 1]")
    return [_make_single(index, seed, nonseasonal_fraction) for index in range(count)]
