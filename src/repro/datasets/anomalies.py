"""Anomaly injection utilities.

The TSB-UAD- and KDD21-like generators build labelled series by injecting
anomalies of the kinds that dominate those benchmarks: point spikes and
dips, short collective bursts, level shifts, temporary seasonal-pattern
changes and flat (stuck-sensor) segments.  Every injector returns the
modified series together with the point labels it produced, so generators
can compose several anomaly types in one series.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive_int

__all__ = [
    "inject_spike",
    "inject_dip",
    "inject_level_shift",
    "inject_collective",
    "inject_pattern_change",
    "inject_flatline",
    "random_anomalies",
]


def _empty_labels(values: np.ndarray) -> np.ndarray:
    return np.zeros(values.size, dtype=int)


def inject_spike(values, position: int, magnitude: float = 5.0):
    """Add a single-point positive spike of ``magnitude`` standard deviations."""
    values = np.array(values, dtype=float)
    labels = _empty_labels(values)
    scale = values.std() if values.std() > 0 else 1.0
    values[position] += magnitude * scale
    labels[position] = 1
    return values, labels


def inject_dip(values, position: int, magnitude: float = 5.0):
    """Add a single-point negative dip."""
    values, labels = inject_spike(values, position, -magnitude)
    return values, labels


def inject_collective(values, start: int, length: int, magnitude: float = 3.0):
    """Add a contiguous anomalous burst of ``length`` points."""
    values = np.array(values, dtype=float)
    labels = _empty_labels(values)
    length = check_positive_int(length, "length")
    stop = min(start + length, values.size)
    scale = values.std() if values.std() > 0 else 1.0
    rng = np.random.default_rng(start * 7919 + length)
    values[start:stop] += magnitude * scale * (0.5 + rng.random(stop - start))
    labels[start:stop] = 1
    return values, labels


def inject_level_shift(values, start: int, magnitude: float = 3.0, labelled_length: int = 20):
    """Shift the level of the series from ``start`` onwards.

    Only the first ``labelled_length`` points after the change are labelled
    anomalous (the new level becomes the new normal), matching how level
    shifts are labelled in the public benchmarks.
    """
    values = np.array(values, dtype=float)
    labels = _empty_labels(values)
    scale = values.std() if values.std() > 0 else 1.0
    values[start:] += magnitude * scale
    labels[start : min(start + labelled_length, values.size)] = 1
    return values, labels


def inject_pattern_change(values, start: int, length: int, period: int, stretch: float = 2.0):
    """Temporarily distort the seasonal pattern (frequency change).

    The segment ``[start, start + length)`` is replaced by a re-sampled
    version of itself whose local frequency is multiplied by ``stretch``.
    """
    values = np.array(values, dtype=float)
    labels = _empty_labels(values)
    length = check_positive_int(length, "length")
    period = check_positive_int(period, "period")
    stop = min(start + length, values.size)
    segment = values[start:stop]
    source_positions = np.clip(
        (np.arange(segment.size) * stretch).astype(int), 0, segment.size - 1
    )
    values[start:stop] = segment[source_positions]
    labels[start:stop] = 1
    return values, labels


def inject_flatline(values, start: int, length: int):
    """Replace a segment with a constant (stuck sensor)."""
    values = np.array(values, dtype=float)
    labels = _empty_labels(values)
    length = check_positive_int(length, "length")
    stop = min(start + length, values.size)
    values[start:stop] = values[start]
    labels[start:stop] = 1
    return values, labels


def random_anomalies(
    values,
    period: int,
    count: int,
    seed: int = 0,
    start_at: int = 0,
    kinds: tuple[str, ...] = ("spike", "dip", "collective", "level_shift", "pattern", "flat"),
):
    """Inject ``count`` randomly chosen, non-overlapping anomalies.

    Anomalies are only placed at or after ``start_at`` (used to keep the
    training prefix clean).  Returns ``(values, labels)``.
    """
    values = np.array(values, dtype=float)
    labels = np.zeros(values.size, dtype=int)
    rng = np.random.default_rng(seed)
    count = check_positive_int(count, "count", minimum=0)
    if count == 0:
        return values, labels
    margin = max(period, 20)
    minimum_start = max(start_at, margin)
    maximum_start = values.size - margin
    if maximum_start <= minimum_start:
        return values, labels

    used: list[tuple[int, int]] = []
    attempts = 0
    injected = 0
    while injected < count and attempts < 50 * count:
        attempts += 1
        kind = kinds[int(rng.integers(len(kinds)))]
        position = int(rng.integers(minimum_start, maximum_start))
        length = int(rng.integers(max(3, period // 10), max(6, period // 2)))
        window = (position - margin, position + length + margin)
        if any(not (window[1] < lo or window[0] > hi) for lo, hi in used):
            continue
        if kind == "spike":
            values, new_labels = inject_spike(values, position, magnitude=float(rng.uniform(4, 8)))
        elif kind == "dip":
            values, new_labels = inject_dip(values, position, magnitude=float(rng.uniform(4, 8)))
        elif kind == "collective":
            values, new_labels = inject_collective(
                values, position, length, magnitude=float(rng.uniform(2, 4))
            )
        elif kind == "level_shift":
            values, new_labels = inject_level_shift(
                values, position, magnitude=float(rng.uniform(2, 4))
            )
        elif kind == "pattern":
            values, new_labels = inject_pattern_change(
                values, position, length, period, stretch=float(rng.uniform(1.5, 3.0))
            )
        else:
            values, new_labels = inject_flatline(values, position, length)
        labels = np.maximum(labels, new_labels)
        used.append(window)
        injected += 1
    return values, labels
