"""TSB-UAD-like anomaly-detection benchmark (substitute for Table 3's data).

The paper evaluates on seventeen dataset families of the public TSB-UAD
benchmark.  Those files cannot be downloaded in this offline environment,
so this module generates one small family of labelled series per benchmark
name, with the family's salient characteristics (rough period, noise level,
seasonality strength, dominant anomaly types) encoded in a profile table.
The generated data exercise exactly the same code paths -- initialization on
a train prefix, online scoring, VUS-ROC evaluation -- and preserve the
qualitative contrasts the paper draws (e.g. ECG-like series favour matrix
profile methods, IoT/AIOps-like series favour the STD-based detectors).

Obviously the absolute VUS-ROC numbers differ from the paper's; see
EXPERIMENTS.md for the shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.anomalies import random_anomalies
from repro.datasets.synthetic import make_seasonal
from repro.datasets.types import AnomalySeries
from repro.utils import check_positive_int

__all__ = ["TSB_UAD_FAMILIES", "FamilyProfile", "make_family", "make_benchmark"]


@dataclass(frozen=True)
class FamilyProfile:
    """Generation profile of one TSB-UAD-like dataset family."""

    name: str
    period: int
    length: int
    seasonal_strength: float
    noise: float
    shape: str
    trend_drift: float
    anomaly_count: int
    anomaly_kinds: tuple[str, ...]


#: Seventeen family profiles mirroring the TSB-UAD datasets used in Table 3.
TSB_UAD_FAMILIES: tuple[FamilyProfile, ...] = (
    FamilyProfile("Daphnet", 128, 4000, 0.8, 0.30, "mixed", 0.0005, 3, ("collective", "pattern")),
    FamilyProfile("Dodgers", 288, 4500, 1.0, 0.25, "sharp", 0.0, 4, ("dip", "collective")),
    FamilyProfile("ECG", 140, 5000, 1.2, 0.10, "sharp", 0.0, 4, ("pattern", "collective")),
    FamilyProfile("Genesis", 160, 4000, 0.6, 0.15, "sine", 0.0, 2, ("spike", "flat")),
    FamilyProfile("GHL", 200, 5000, 0.7, 0.20, "mixed", 0.0008, 3, ("level_shift", "collective")),
    FamilyProfile("IOPS", 288, 5500, 1.0, 0.20, "sharp", 0.001, 4, ("spike", "dip", "level_shift")),
    FamilyProfile("MGAB", 100, 4000, 0.9, 0.05, "sine", 0.0, 3, ("pattern",)),
    FamilyProfile("MITDB", 180, 5000, 1.1, 0.15, "sharp", 0.0, 4, ("pattern", "collective")),
    FamilyProfile("NAB", 250, 4000, 0.6, 0.35, "mixed", 0.002, 3, ("spike", "level_shift")),
    FamilyProfile("NASA-MSL", 120, 3500, 0.5, 0.25, "mixed", 0.0, 2, ("collective", "flat")),
    FamilyProfile("NASA-SMAP", 130, 3500, 0.6, 0.25, "sine", 0.0, 2, ("collective", "level_shift")),
    FamilyProfile("Occupancy", 144, 4000, 0.9, 0.15, "sharp", 0.0, 3, ("spike", "collective")),
    FamilyProfile("Opportunity", 150, 4000, 0.4, 0.40, "mixed", 0.001, 3, ("collective", "pattern")),
    FamilyProfile("SensorScope", 96, 4000, 0.7, 0.30, "sine", 0.0015, 3, ("spike", "flat")),
    FamilyProfile("SMD", 288, 5500, 0.8, 0.20, "sharp", 0.0005, 4, ("spike", "level_shift", "collective")),
    FamilyProfile("SVDB", 170, 5000, 1.1, 0.12, "sharp", 0.0, 4, ("pattern", "collective")),
    FamilyProfile("YAHOO", 168, 3500, 0.9, 0.15, "mixed", 0.002, 3, ("spike", "dip", "level_shift")),
)

_PROFILES_BY_NAME = {profile.name: profile for profile in TSB_UAD_FAMILIES}


def make_family(
    name: str,
    series_per_family: int = 3,
    seed: int = 0,
    train_fraction: float = 0.4,
) -> list[AnomalySeries]:
    """Generate the labelled series of one family."""
    if name not in _PROFILES_BY_NAME:
        raise KeyError(f"unknown family {name!r}; known: {sorted(_PROFILES_BY_NAME)}")
    profile = _PROFILES_BY_NAME[name]
    series_per_family = check_positive_int(series_per_family, "series_per_family")

    family: list[AnomalySeries] = []
    for series_index in range(series_per_family):
        rng = np.random.default_rng(hash((name, seed, series_index)) % (2**32))
        length = profile.length
        time = np.arange(length)
        seasonal = profile.seasonal_strength * make_seasonal(
            length, profile.period, shape=profile.shape
        )
        trend = profile.trend_drift * time + 0.2 * np.sin(
            2 * np.pi * time / (length / 1.5)
        )
        noise = rng.normal(0.0, profile.noise, size=length)
        values = trend + seasonal + noise

        train_length = max(int(length * train_fraction), 2 * profile.period + 10)
        values, labels = random_anomalies(
            values,
            profile.period,
            count=profile.anomaly_count,
            seed=seed * 1000 + series_index,
            start_at=train_length + profile.period,
            kinds=profile.anomaly_kinds,
        )
        family.append(
            AnomalySeries(
                name=f"{name}-{series_index}",
                values=values,
                labels=labels,
                train_length=train_length,
                period=profile.period,
            )
        )
    return family


def make_benchmark(
    series_per_family: int = 3,
    seed: int = 0,
    families: tuple[str, ...] | None = None,
) -> dict[str, list[AnomalySeries]]:
    """Generate the full TSB-UAD-like benchmark as ``{family: [series, ...]}``."""
    if families is None:
        families = tuple(profile.name for profile in TSB_UAD_FAMILIES)
    return {
        name: make_family(name, series_per_family=series_per_family, seed=seed)
        for name in families
    }
