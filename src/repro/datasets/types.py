"""Dataset containers shared by the generators and loaders."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ComponentSeries", "AnomalySeries", "ForecastSeries"]


@dataclass
class ComponentSeries:
    """A synthetic series with known ground-truth components.

    Used by the decomposition-quality experiments (Table 2, Figures 5/6):
    the generators return both the observed series and the exact trend,
    seasonal and residual components it was built from.
    """

    name: str
    values: np.ndarray
    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    period: int

    def __post_init__(self) -> None:
        shapes = {self.values.shape, self.trend.shape, self.seasonal.shape, self.residual.shape}
        if len(shapes) != 1:
            raise ValueError("all components must have the same shape")

    def __len__(self) -> int:
        return int(self.values.size)


@dataclass
class AnomalySeries:
    """A labelled anomaly-detection series (TSB-UAD / KDD21 style).

    ``train_length`` points are reserved for initialization/training; the
    remaining points form the online test region scored by the detectors.
    """

    name: str
    values: np.ndarray
    labels: np.ndarray
    train_length: int
    period: int

    def __post_init__(self) -> None:
        if self.values.shape != self.labels.shape:
            raise ValueError("values and labels must have the same shape")
        if not 0 < self.train_length < self.values.size:
            raise ValueError("train_length must be positive and smaller than the series")

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def train_values(self) -> np.ndarray:
        return self.values[: self.train_length]

    @property
    def test_values(self) -> np.ndarray:
        return self.values[self.train_length :]

    @property
    def test_labels(self) -> np.ndarray:
        return self.labels[self.train_length :]

    @property
    def anomaly_fraction(self) -> float:
        return float(self.labels.mean())


@dataclass
class ForecastSeries:
    """A forecasting series with a chronological train/validation/test split."""

    name: str
    values: np.ndarray
    period: int
    horizons: tuple[int, ...]
    train_fraction: float = 0.7
    validation_fraction: float = 0.1
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 < self.train_fraction < 1:
            raise ValueError("train_fraction must lie in (0, 1)")
        if not 0 <= self.validation_fraction < 1 - self.train_fraction:
            raise ValueError("validation_fraction leaves no room for a test split")

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def train_end(self) -> int:
        return int(round(self.values.size * self.train_fraction))

    @property
    def validation_end(self) -> int:
        return int(round(self.values.size * (self.train_fraction + self.validation_fraction)))

    @property
    def train_values(self) -> np.ndarray:
        return self.values[: self.train_end]

    @property
    def validation_values(self) -> np.ndarray:
        return self.values[self.train_end : self.validation_end]

    @property
    def test_values(self) -> np.ndarray:
        return self.values[self.validation_end :]
