"""Loaders for user-provided real benchmark files.

When the actual public benchmark files are available locally (TSB-UAD
``.out`` files with ``value,label`` rows, UCR/KDD21 text files with one
value per line and the anomaly region encoded in the file name, or plain
CSV columns for the forecasting datasets), these loaders read them into the
same dataclasses the synthetic generators produce, so every benchmark
harness can run on real data without modification.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path

import numpy as np

from repro.datasets.types import AnomalySeries, ForecastSeries
from repro.periodicity import find_length

__all__ = ["load_tsb_uad_file", "load_kdd21_file", "load_csv_column"]


def load_tsb_uad_file(path, period: int | None = None, train_fraction: float = 0.4) -> AnomalySeries:
    """Load a TSB-UAD ``value,label`` file into an :class:`AnomalySeries`."""
    path = Path(path)
    values: list[float] = []
    labels: list[int] = []
    with path.open() as handle:
        for row in csv.reader(handle):
            if not row:
                continue
            values.append(float(row[0]))
            labels.append(int(float(row[1])) if len(row) > 1 else 0)
    values_array = np.asarray(values, dtype=float)
    labels_array = np.asarray(labels, dtype=int)
    if period is None:
        period = find_length(values_array)
    train_length = max(int(values_array.size * train_fraction), 2 * period + 1)
    return AnomalySeries(
        name=path.stem,
        values=values_array,
        labels=labels_array,
        train_length=train_length,
        period=period,
    )


def load_kdd21_file(path, period: int | None = None) -> AnomalySeries:
    """Load a KDD CUP 2021 file.

    The competition encodes the training length and anomaly location in the
    file name (``<id>_<train_length>_<anomaly_start>_<anomaly_stop>.txt``);
    the anomaly region is converted into point labels.
    """
    path = Path(path)
    values = np.loadtxt(path, dtype=float).ravel()
    numbers = [int(token) for token in re.findall(r"\d+", path.stem)]
    if len(numbers) < 4:
        raise ValueError(
            "KDD21 file names must encode train length and anomaly range "
            "(e.g. 001_2500_5400_5600.txt)"
        )
    train_length, anomaly_start, anomaly_stop = numbers[-3], numbers[-2], numbers[-1]
    labels = np.zeros(values.size, dtype=int)
    labels[anomaly_start : anomaly_stop + 1] = 1
    if period is None:
        period = find_length(values[:train_length])
    return AnomalySeries(
        name=path.stem,
        values=values,
        labels=labels,
        train_length=train_length,
        period=period,
    )


def load_csv_column(
    path,
    column: str | int,
    name: str | None = None,
    period: int | None = None,
    horizons: tuple[int, ...] = (96, 192, 336, 720),
) -> ForecastSeries:
    """Load one column of a CSV file into a :class:`ForecastSeries`."""
    path = Path(path)
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if isinstance(column, str):
            if column not in header:
                raise KeyError(f"column {column!r} not found in {path.name}")
            column_index = header.index(column)
        else:
            column_index = int(column)
        values = [float(row[column_index]) for row in reader if row]
    values_array = np.asarray(values, dtype=float)
    if period is None:
        period = find_length(values_array)
    return ForecastSeries(
        name=name or f"{path.stem}:{column}",
        values=values_array,
        period=period,
        horizons=horizons,
    )
