"""Synthetic decomposition-quality datasets (paper Section 5.1.1, Figure 4).

``Syn1`` exercises abrupt trend changes: a seasonal signal of period 500
whose trend jumps twice, plus Gaussian noise and occasional spikes.
``Syn2`` exercises seasonality shifts: a seasonal signal of period 250 in
which four periods are shifted by 10 samples (visually indistinguishable,
but fatal for methods that assume perfectly aligned cycles).

The generators follow the structural description in the paper (exact noise
seeds are not published) and return the ground-truth components so that the
decomposition MAE of Table 2 can be computed.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.types import ComponentSeries
from repro.utils import check_period, check_positive_int

__all__ = ["make_seasonal", "make_syn1", "make_syn2", "repeat_series"]


def make_seasonal(
    length: int,
    period: int,
    shape: str = "sine",
    amplitude: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Build one seasonal template repeated over ``length`` samples.

    ``shape`` may be ``"sine"`` (smooth), ``"mixed"`` (two harmonics) or
    ``"sharp"`` (asymmetric sawtooth-like burst, closer to request-rate
    metrics).
    """
    length = check_positive_int(length, "length")
    period = check_period(period)
    time = np.arange(length)
    phase = 2 * np.pi * (time % period) / period
    if shape == "sine":
        seasonal = np.sin(phase)
    elif shape == "mixed":
        seasonal = np.sin(phase) + 0.5 * np.sin(2 * phase) + 0.25 * np.cos(3 * phase)
    elif shape == "sharp":
        relative = (time % period) / period
        seasonal = np.exp(-((relative - 0.35) ** 2) / 0.01) + 0.6 * np.exp(
            -((relative - 0.7) ** 2) / 0.005
        )
        seasonal = seasonal - seasonal.mean()
    else:
        raise ValueError("shape must be 'sine', 'mixed' or 'sharp'")
    return amplitude * seasonal


def make_syn1(
    length: int = 7000,
    period: int = 500,
    noise: float = 0.1,
    seed: int = 0,
) -> ComponentSeries:
    """Syn1: abrupt trend changes on top of a period-500 seasonal signal."""
    length = check_positive_int(length, "length")
    period = check_period(period)
    rng = np.random.default_rng(seed)
    time = np.arange(length)

    trend = np.zeros(length)
    trend += 0.0002 * time
    first_break = int(length * 0.45)
    second_break = int(length * 0.75)
    trend += 1.5 * (time >= first_break)
    trend += 1.0 * (time >= second_break)

    seasonal = make_seasonal(length, period, shape="mixed", amplitude=1.0)
    residual = rng.normal(0.0, noise, size=length)
    spike_positions = rng.choice(length, size=max(3, length // 1500), replace=False)
    residual[spike_positions] += rng.choice([-1.0, 1.0], size=spike_positions.size) * rng.uniform(
        0.8, 1.5, size=spike_positions.size
    )

    values = trend + seasonal + residual
    return ComponentSeries(
        name="Syn1",
        values=values,
        trend=trend,
        seasonal=seasonal,
        residual=residual,
        period=period,
    )


def make_syn2(
    length: int = 2500,
    period: int = 250,
    noise: float = 0.05,
    shift: int = 10,
    shifted_periods: int = 4,
    seed: int = 1,
) -> ComponentSeries:
    """Syn2: four seasonal periods shifted by ``shift`` samples (period 250)."""
    length = check_positive_int(length, "length")
    period = check_period(period)
    rng = np.random.default_rng(seed)
    time = np.arange(length)

    trend = 0.5 * np.ones(length) + 0.0001 * time
    phase_offsets = np.zeros(length, dtype=int)
    total_periods = length // period
    shifted = rng.choice(
        np.arange(2, max(3, total_periods)), size=min(shifted_periods, max(1, total_periods - 2)), replace=False
    )
    for cycle in shifted:
        start = cycle * period
        stop = min(start + period, length)
        phase_offsets[start:stop] = shift
    phase = 2 * np.pi * ((time + phase_offsets) % period) / period
    seasonal = np.sin(phase) + 0.4 * np.sin(2 * phase)

    residual = rng.normal(0.0, noise, size=length)
    values = trend + seasonal + residual
    return ComponentSeries(
        name="Syn2",
        values=values,
        trend=trend,
        seasonal=seasonal,
        residual=residual,
        period=period,
    )


def repeat_series(series: np.ndarray, target_length: int) -> np.ndarray:
    """Tile ``series`` until it reaches ``target_length`` samples.

    Used by the Figure-7 scalability experiment, which builds a 200,000-point
    stream by repeating Syn1.
    """
    series = np.asarray(series, dtype=float)
    target_length = check_positive_int(target_length, "target_length")
    repetitions = int(np.ceil(target_length / series.size))
    return np.tile(series, repetitions)[:target_length]
