"""Real1/Real2-like series (paper Figure 4c/4d).

The paper's Real1 and Real2 are request-rate metrics of internal Alibaba
Cloud database APIs and are not public.  These generators reproduce the
characteristics the paper describes and plots:

* **Real1-like** -- strong daily seasonality with a sharp "burst" shape, an
  abrupt upward trend change about two thirds into the series, light noise.
* **Real2-like** -- weak seasonality buried in strong observation noise with
  a slowly drifting level.

They are used for the qualitative decomposition comparison of Figure 6;
because no ground truth exists for real data (nor for these stand-ins), the
benchmark reports component statistics rather than errors, exactly like the
paper's visual comparison.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import make_seasonal
from repro.datasets.types import ComponentSeries
from repro.utils import check_period, check_positive_int

__all__ = ["make_real1_like", "make_real2_like"]


def make_real1_like(
    length: int = 9000,
    period: int = 1000,
    noise: float = 0.02,
    seed: int = 7,
) -> ComponentSeries:
    """Request-rate-shaped series with an abrupt trend change."""
    length = check_positive_int(length, "length")
    period = check_period(period)
    rng = np.random.default_rng(seed)
    time = np.arange(length)

    base_level = 0.25
    break_point = int(length * 0.62)
    trend = base_level + 0.3 * (time >= break_point) + 0.00001 * time
    seasonal = 0.35 * make_seasonal(length, period, shape="sharp")
    # Mild day-to-day amplitude variation, as visible in the paper's plot.
    amplitude = 1.0 + 0.1 * np.sin(2 * np.pi * time / (7 * period))
    seasonal = seasonal * amplitude
    residual = rng.normal(0.0, noise, size=length)
    values = trend + seasonal + residual
    return ComponentSeries(
        name="Real1-like",
        values=values,
        trend=trend,
        seasonal=seasonal,
        residual=residual,
        period=period,
    )


def make_real2_like(
    length: int = 7000,
    period: int = 1000,
    noise: float = 0.12,
    seed: int = 11,
) -> ComponentSeries:
    """Noisy series with weak seasonality and a wandering level."""
    length = check_positive_int(length, "length")
    period = check_period(period)
    rng = np.random.default_rng(seed)
    time = np.arange(length)

    drift = np.cumsum(rng.normal(0.0, 0.0008, size=length))
    trend = 0.4 + drift - drift.mean()
    seasonal = 0.08 * make_seasonal(length, period, shape="mixed")
    residual = rng.normal(0.0, noise, size=length)
    # Heavier-tailed noise bursts.
    burst_positions = rng.choice(length, size=length // 500, replace=False)
    residual[burst_positions] += rng.normal(0.0, 3 * noise, size=burst_positions.size)
    values = trend + seasonal + residual
    return ComponentSeries(
        name="Real2-like",
        values=values,
        trend=trend,
        seasonal=seasonal,
        residual=residual,
        period=period,
    )
