"""Dataset generators and loaders for every experiment in the paper.

Synthetic substitutes are provided for all proprietary or non-downloadable
data (see DESIGN.md for the substitution table); loaders are provided for
users who have the real benchmark files locally.
"""

from repro.datasets.anomalies import (
    inject_collective,
    inject_dip,
    inject_flatline,
    inject_level_shift,
    inject_pattern_change,
    inject_spike,
    random_anomalies,
)
from repro.datasets.kdd21 import make_kdd21_like
from repro.datasets.loaders import load_csv_column, load_kdd21_file, load_tsb_uad_file
from repro.datasets.realworld import make_real1_like, make_real2_like
from repro.datasets.synthetic import make_seasonal, make_syn1, make_syn2, repeat_series
from repro.datasets.tsad_benchmark import (
    TSB_UAD_FAMILIES,
    FamilyProfile,
    make_benchmark,
    make_family,
)
from repro.datasets.tsf_benchmark import (
    TSF_DATASETS,
    TSFProfile,
    make_tsf_benchmark,
    make_tsf_dataset,
)
from repro.datasets.types import AnomalySeries, ComponentSeries, ForecastSeries

__all__ = [
    "AnomalySeries",
    "ComponentSeries",
    "ForecastSeries",
    "FamilyProfile",
    "TSB_UAD_FAMILIES",
    "TSFProfile",
    "TSF_DATASETS",
    "inject_collective",
    "inject_dip",
    "inject_flatline",
    "inject_level_shift",
    "inject_pattern_change",
    "inject_spike",
    "load_csv_column",
    "load_kdd21_file",
    "load_tsb_uad_file",
    "make_benchmark",
    "make_family",
    "make_kdd21_like",
    "make_real1_like",
    "make_real2_like",
    "make_seasonal",
    "make_syn1",
    "make_syn2",
    "make_tsf_benchmark",
    "make_tsf_dataset",
    "random_anomalies",
    "repeat_series",
]
