"""Incremental banded LDL^T solver (generalized OnlineDoolittle, Algorithm 4).

The OneShotSTL online phase repeatedly solves a *growing* symmetric
positive-definite banded linear system ``A x = b`` in which

* each step appends a small, fixed number of new variables,
* the appended terms only modify matrix entries whose row and column both
  lie within the trailing ``w`` indices of the previous system (``w`` is the
  half bandwidth), and
* only the last few entries of the solution are required.

Under these conditions the factorization work per append is ``O(w^2)`` --
independent of the total system size -- which is exactly the observation
behind the paper's OnlineDoolittle algorithm (Algorithm 4).

The state kept here is the *Schur form* of that algorithm.  Once an index
moves more than ``w`` positions away from the end it is finalized: no
future append can touch it, so its entire influence on the rest of the
system is summarized by the Schur-complement correction it leaves on the
trailing block.  The solver therefore stores only the *corrected* trailing
block ``M_trail`` (``w x w``) and right-hand side ``bp_trail`` (``w``): the
raw trailing coefficients minus the accumulated correction of every
finalized column.  In LDL^T terms these equal ``L_tail D_tail L_tail^T``
and ``L_tail z_tail`` of the classic OnlineDoolittle state -- the two
representations are algebraically identical, but the Schur form advances
with one small dense elimination per append instead of re-deriving
off-band factor columns.

Appending ``k`` variables extends the corrected block to ``(w + k)`` rows,
applies the coefficient updates, and then eliminates the ``k`` oldest
variables (they become finalized) in one elimination sweep.  The last
``w`` entries of the full solution are recovered by solving the ``w x w``
corrected system directly -- no entry outside the trailing block can
influence them.

The trailing block is at most ``2w`` wide (6x6 for the OneShotSTL system),
far below the size where NumPy ufunc/BLAS dispatch pays for itself, so the
per-append kernel keeps the block as plain Python floats and unrolls the
arithmetic; NumPy appears only at the API boundary.  Callers in a
per-point loop (OneShotSTL runs ``I`` of these solvers per observation)
get two further conveniences:

* :meth:`IncrementalBandedLDLT.extend` accepts, besides the classic
  iterable of ``(row, column, value)`` triples, a tuple of three equal
  length arrays ``(rows, columns, values)`` -- the shape produced by
  :class:`repro.core.online_system.ContributionWorkspace` -- so the hot
  path hands over one preallocated array bundle instead of a fresh list of
  tuples per point.
* :meth:`IncrementalBandedLDLT.rollback` undoes the most recent
  :meth:`extend` in O(1) time.  Every extend rebinds (never mutates) the
  ``O(w^2)`` state, so one level of undo is just a bundle of saved
  references.  OneShotSTL's seasonality-shift search uses this to retry a
  point with candidate shifts without paying for a deep snapshot on the
  (overwhelmingly common) points where the search never triggers.

For the first few appends (while the system is still smaller than a few
bandwidths) the solver simply keeps the dense matrix and solves it exactly;
once large enough it transparently switches to the incremental
representation.  The switch is exact: results match a full dense solve to
machine precision, which is verified by the test suite.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from repro.analysis import hotpath
from repro.solvers.ldlt import ldlt_factor

__all__ = ["IncrementalBandedLDLT"]

#: entry of the ``updates`` argument of :meth:`IncrementalBandedLDLT.extend`:
#: ``(row, column, value)`` with absolute indices.
UpdateEntry = Tuple[int, int, float]

#: array form of ``updates``: ``(rows, columns, values)`` of equal length.
UpdateArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


class IncrementalBandedLDLT:
    """Solver for a growing symmetric banded system with O(1) appends.

    Parameters
    ----------
    half_bandwidth:
        Half bandwidth ``w`` of the system: ``A[i, j] == 0`` whenever
        ``|i - j| > w``.
    warmup_size:
        System size below which a dense representation is kept.  Must be at
        least ``2 * half_bandwidth``; the default of ``3 * w`` leaves a
        comfortable margin.
    """

    def __init__(self, half_bandwidth: int, warmup_size: int | None = None):
        if half_bandwidth < 1:
            raise ValueError("half_bandwidth must be at least 1")
        self.half_bandwidth = int(half_bandwidth)
        minimum_warmup = 2 * self.half_bandwidth
        if warmup_size is None:
            warmup_size = 3 * self.half_bandwidth
        if warmup_size < minimum_warmup:
            raise ValueError(
                f"warmup_size must be at least {minimum_warmup}, got {warmup_size}"
            )
        self.warmup_size = int(warmup_size)

        self.size = 0
        self._dense_matrix: np.ndarray | None = np.zeros((0, 0))
        self._dense_rhs: np.ndarray | None = np.zeros(0)
        self._incremental = False

        w = self.half_bandwidth
        #: corrected trailing block (raw trailing coefficients minus the
        #: Schur correction of every finalized column) and its rhs, stored
        #: as plain Python floats for the scalar kernel.
        self._m_trail: list[list[float]] = [[0.0] * w for _ in range(w)]
        self._bp_trail: list[float] = [0.0] * w
        #: saved pre-extend state references for :meth:`rollback`.
        self._undo: tuple | None = None

    # ------------------------------------------------------------------ API

    @property
    def is_incremental(self) -> bool:
        """Whether the solver has switched to the O(1) incremental mode."""
        return self._incremental

    def copy(self) -> "IncrementalBandedLDLT":
        """Return an independent deep copy of the solver state.

        Copies are cheap (``O(w^2)`` memory) and are used by OneShotSTL's
        seasonality-shift search to evaluate candidate shifts without
        committing their effect.  The pending :meth:`rollback` level, if
        any, is not carried over.
        """
        clone = IncrementalBandedLDLT(self.half_bandwidth, self.warmup_size)
        clone.size = self.size
        clone._incremental = self._incremental
        if self._dense_matrix is not None:
            clone._dense_matrix = self._dense_matrix.copy()
            clone._dense_rhs = self._dense_rhs.copy()
        else:
            clone._dense_matrix = None
            clone._dense_rhs = None
        clone._m_trail = [row[:] for row in self._m_trail]
        clone._bp_trail = self._bp_trail[:]
        return clone

    @hotpath
    def rollback(self) -> None:
        """Undo the most recent :meth:`extend` in O(1) time.

        Exactly one level of undo is kept: calling ``rollback()`` twice in a
        row, or before any ``extend``, raises.  The restored state is
        bit-identical to the pre-extend state (the extend path rebinds
        rather than mutates the whole state, so restoring the saved
        references is exact).
        """
        if self._undo is None:
            raise ValueError("no extend to roll back (a single undo level is kept)")
        (
            self.size,
            self._incremental,
            self._dense_matrix,
            self._dense_rhs,
            self._m_trail,
            self._bp_trail,
        ) = self._undo
        self._undo = None

    @hotpath
    def extend(
        self,
        num_new: int,
        updates: Union[Iterable[UpdateEntry], UpdateArrays],
        rhs_new: Sequence[float],
        check_indices: bool = True,
    ) -> None:
        """Append ``num_new`` variables and apply coefficient updates.

        Parameters
        ----------
        num_new:
            Number of appended variables (``1 <= num_new <= half_bandwidth``).
        updates:
            Either an iterable of ``(row, column, value)`` triples, or -- the
            array fast path -- a tuple of three equal-length 1-D NumPy
            arrays ``(rows, columns, values)`` (recognized by the first
            element being an ``ndarray``).  ``value`` is *added* to
            ``A[row, column]`` (and to the symmetric entry).  Indices are
            absolute; both must lie within the trailing ``half_bandwidth``
            indices of the previous system or refer to the newly appended
            variables, and ``|row - column|`` must not exceed the half
            bandwidth.  The arrays of the fast path are consumed during the
            call and may be reused by the caller afterwards.
        rhs_new:
            Right-hand-side values of the appended variables
            (length ``num_new``).  Existing right-hand-side entries cannot be
            modified.
        check_indices:
            Set to False to skip the per-entry index validation.  Only for
            callers that guarantee the banded-update contract structurally
            (the OneShotSTL hot path emits the same statically valid
            pattern for every point); out-of-contract indices then raise
            unspecific errors or corrupt the trailing block.
        """
        w = self.half_bandwidth
        if not 1 <= num_new <= w:
            raise ValueError(f"num_new must be in [1, {w}], got {num_new}")
        # The array fast path is recognized by its first element being an
        # ndarray -- a plain 3-tuple of (row, column, value) triples is a
        # valid instance of the iterable-of-triples form and must not be
        # transposed.
        if (
            isinstance(updates, tuple)
            and len(updates) == 3
            and isinstance(updates[0], np.ndarray)
        ):
            rows = updates[0].tolist()
            columns = np.asarray(updates[1]).tolist()
            values = np.asarray(updates[2]).tolist()
            if not len(rows) == len(columns) == len(values):
                raise ValueError(
                    "updates must provide equal-length rows/columns/values"
                )
            entries = zip(rows, columns, values)
        else:
            entries = updates
        if isinstance(rhs_new, np.ndarray):
            rhs_list = rhs_new.tolist()
        else:
            rhs_list = [float(value) for value in rhs_new]
        if len(rhs_list) != num_new:
            raise ValueError(f"rhs_new must have length {num_new}")

        if self._incremental:
            self._extend_incremental(num_new, entries, rhs_list, check_indices)
        else:
            self._extend_dense(num_new, entries, rhs_list, check_indices)
            if self.size >= self.warmup_size:
                self._switch_to_incremental()

    @hotpath
    def tail_solution(self, count: int) -> np.ndarray:
        """Return the last ``count`` entries of the solution of ``A x = b``.

        ``count`` may not exceed the half bandwidth once the solver is in
        incremental mode (the OneShotSTL model needs only the last two
        entries: the newest trend and seasonal values).
        """
        if self.size == 0:
            raise ValueError("the system is empty")
        if count < 1:
            raise ValueError("count must be at least 1")
        if not self._incremental:
            lower, diag = ldlt_factor(self._dense_matrix)
            z = self._dense_rhs.copy()
            for k in range(self.size):
                z[k] -= np.dot(lower[k, :k], z[:k])
            x = z / diag
            for k in range(self.size - 2, -1, -1):
                x[k] -= np.dot(lower[k + 1 :, k], x[k + 1 :])
            if count > self.size:
                raise ValueError("count exceeds the system size")
            return x[-count:]

        w = self.half_bandwidth
        if count > w:
            raise ValueError(
                f"count ({count}) cannot exceed the half bandwidth ({w}) "
                "in incremental mode"
            )
        # The corrected trailing system is exactly what the last w entries
        # of the global solution satisfy: no finalized variable can reach
        # them except through the correction already folded into M_trail.
        matrix = [row[:] for row in self._m_trail]
        rhs = self._bp_trail[:]
        for k in range(w):
            pivot = matrix[k][k]
            if pivot == 0.0 or not math.isfinite(pivot):
                raise ValueError(f"singular trailing system at pivot {k}")
            pivot_row = matrix[k]
            pivot_rhs = rhs[k]
            for i in range(k + 1, w):
                factor = matrix[i][k] / pivot
                if factor != 0.0:
                    row = matrix[i]
                    for j in range(k + 1, w):
                        row[j] -= factor * pivot_row[j]
                    rhs[i] -= factor * pivot_rhs
        solution = [0.0] * w
        for i in range(w - 1, -1, -1):
            accumulator = rhs[i]
            row = matrix[i]
            for j in range(i + 1, w):
                accumulator -= row[j] * solution[j]
            solution[i] = accumulator / row[i]
        return np.array(solution[w - count :])

    # --------------------------------------------------------- dense warm-up

    def _extend_dense(
        self, num_new: int, entries, rhs_list: list[float], check_indices: bool
    ) -> None:
        w = self.half_bandwidth
        old_size = self.size
        new_size = old_size + num_new
        lowest_mutable = max(0, old_size - w)
        matrix = np.zeros((new_size, new_size))
        matrix[:old_size, :old_size] = self._dense_matrix
        rhs = np.zeros(new_size)
        rhs[:old_size] = self._dense_rhs
        rhs[old_size:] = rhs_list
        for row, column, value in entries:
            if row < column:
                row, column = column, row
            if check_indices:
                _check_entry(row, column, new_size, lowest_mutable, w)
            matrix[row, column] += value
            if row != column:
                matrix[column, row] += value
        self._undo = (
            self.size,
            self._incremental,
            self._dense_matrix,
            self._dense_rhs,
            self._m_trail,
            self._bp_trail,
        )
        self._dense_matrix = matrix
        self._dense_rhs = rhs
        self.size = new_size

    def _switch_to_incremental(self) -> None:
        w = self.half_bandwidth
        n = self.size
        boundary = n - w
        lower, diag = ldlt_factor(self._dense_matrix)
        z = self._dense_rhs.copy()
        for k in range(n):
            z[k] -= np.dot(lower[k, :k], z[:k])

        # Corrected trailing block: the part of the normal equations the
        # tail actually sees, i.e. L_tail D_tail L_tail^T and L_tail z_tail.
        tail_lower = lower[boundary:, boundary:]
        tail_diag = diag[boundary:]
        self._m_trail = ((tail_lower * tail_diag) @ tail_lower.T).tolist()
        self._bp_trail = (tail_lower @ z[boundary:]).tolist()

        self._dense_matrix = None
        self._dense_rhs = None
        self._incremental = True

    # ------------------------------------------------------ incremental mode

    @hotpath
    def _extend_incremental(
        self, num_new: int, entries, rhs_list: list[float], check_indices: bool
    ) -> None:
        w = self.half_bandwidth
        block = w + num_new
        old_size = self.size
        new_size = old_size + num_new
        old_boundary = old_size - w

        # Extended corrected block over absolute indices
        # [old_boundary, new_size), as plain floats.
        matrix = [row[:] + [0.0] * num_new for row in self._m_trail]
        zero_row = [0.0] * block
        for _ in range(num_new):
            matrix.append(zero_row[:])
        rhs = self._bp_trail + rhs_list
        for row_index, column_index, value in entries:
            if row_index < column_index:
                row_index, column_index = column_index, row_index
            if check_indices:
                _check_entry(row_index, column_index, new_size, old_boundary, w)
            local_row = row_index - old_boundary
            local_column = column_index - old_boundary
            matrix[local_row][local_column] += value
            if local_row != local_column:
                matrix[local_column][local_row] += value

        # Eliminate the num_new oldest variables: they are finalized now, so
        # fold their Schur-complement correction into the new trailing block.
        for k in range(num_new):
            pivot = matrix[k][k]
            if pivot == 0.0 or not math.isfinite(pivot):
                raise ValueError(
                    f"zero or invalid pivot while finalizing index {old_boundary + k}"
                )
            pivot_row = matrix[k]
            pivot_rhs = rhs[k]
            for i in range(k + 1, block):
                factor = matrix[i][k] / pivot
                if factor != 0.0:
                    row = matrix[i]
                    for j in range(k + 1, block):
                        row[j] -= factor * pivot_row[j]
                    rhs[i] -= factor * pivot_rhs

        self._undo = (
            self.size,
            self._incremental,
            self._dense_matrix,
            self._dense_rhs,
            self._m_trail,
            self._bp_trail,
        )
        self._m_trail = [row[num_new:] for row in matrix[num_new:]]
        self._bp_trail = rhs[num_new:]
        self.size = new_size


def _check_entry(
    row: int, column: int, new_size: int, lowest_mutable: int, half_bandwidth: int
) -> None:
    """Validate one (row >= column) coefficient update."""
    if row >= new_size:
        raise IndexError(f"update row {row} outside the extended system")
    if column < lowest_mutable:
        raise ValueError(
            f"update touches finalized index {column} "
            f"(allowed indices start at {lowest_mutable})"
        )
    if row - column > half_bandwidth:
        raise ValueError(
            f"update ({row}, {column}) violates the half bandwidth {half_bandwidth}"
        )
