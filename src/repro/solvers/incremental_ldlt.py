"""Incremental banded LDL^T solver (generalized OnlineDoolittle, Algorithm 4).

The OneShotSTL online phase repeatedly solves a *growing* symmetric
positive-definite banded linear system ``A x = b`` in which

* each step appends a small, fixed number of new variables,
* the appended terms only modify matrix entries whose row and column both
  lie within the trailing ``w`` indices of the previous system (``w`` is the
  half bandwidth), and
* only the last few entries of the solution are required.

Under these conditions the LDL^T factorization, the forward substitution,
and the relevant tail of the backward substitution can all be updated in
``O(w^2)`` time per append -- independent of the total system size.  This is
exactly the observation behind the paper's OnlineDoolittle algorithm
(Algorithm 4); this module implements it for an arbitrary half bandwidth
and append size so that it can also be reused and tested on its own.

Internally the solver keeps only ``O(w^2)`` state:

``A_trail``, ``b_trail``
    The raw coefficients of the trailing ``w`` rows/columns that may still be
    modified by future appends.
``L_off``, ``D_prev``, ``z_prev``
    The finalized factorization (off-band columns of ``L``, pivots of ``D``)
    and forward-substituted right-hand side for the ``w`` indices *preceding*
    the trailing block.  These never change again.
``L_tail``, ``D_tail``, ``z_tail``
    The factorization of the trailing block after the latest append, from
    which the last solution entries are obtained by a short backward
    substitution.

For the first few appends (while the system is still smaller than a few
bandwidths) the solver simply keeps the dense matrix and solves it exactly;
once large enough it transparently switches to the incremental
representation.  The switch is exact: results match a full dense solve to
machine precision, which is verified by the test suite.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.solvers.ldlt import ldlt_factor

__all__ = ["IncrementalBandedLDLT"]

#: entry of the ``updates`` argument of :meth:`IncrementalBandedLDLT.extend`:
#: ``(row, column, value)`` with absolute indices, ``row >= column``.
UpdateEntry = Tuple[int, int, float]


class IncrementalBandedLDLT:
    """Solver for a growing symmetric banded system with O(1) appends.

    Parameters
    ----------
    half_bandwidth:
        Half bandwidth ``w`` of the system: ``A[i, j] == 0`` whenever
        ``|i - j| > w``.
    warmup_size:
        System size below which a dense representation is kept.  Must be at
        least ``2 * half_bandwidth``; the default of ``3 * w`` leaves a
        comfortable margin.
    """

    def __init__(self, half_bandwidth: int, warmup_size: int | None = None):
        if half_bandwidth < 1:
            raise ValueError("half_bandwidth must be at least 1")
        self.half_bandwidth = int(half_bandwidth)
        minimum_warmup = 2 * self.half_bandwidth
        if warmup_size is None:
            warmup_size = 3 * self.half_bandwidth
        if warmup_size < minimum_warmup:
            raise ValueError(
                f"warmup_size must be at least {minimum_warmup}, got {warmup_size}"
            )
        self.warmup_size = int(warmup_size)

        self.size = 0
        self._dense_matrix: np.ndarray | None = np.zeros((0, 0))
        self._dense_rhs: np.ndarray | None = np.zeros(0)
        self._incremental = False

        w = self.half_bandwidth
        self._a_trail = np.zeros((w, w))
        self._b_trail = np.zeros(w)
        self._l_off = np.zeros((2 * w, w))
        self._d_prev = np.zeros(w)
        self._z_prev = np.zeros(w)
        self._l_tail = np.zeros((w, w))
        self._d_tail = np.zeros(w)
        self._z_tail = np.zeros(w)

    # ------------------------------------------------------------------ API

    @property
    def is_incremental(self) -> bool:
        """Whether the solver has switched to the O(1) incremental mode."""
        return self._incremental

    def copy(self) -> "IncrementalBandedLDLT":
        """Return an independent deep copy of the solver state.

        Copies are cheap (``O(w^2)`` memory) and are used by OneShotSTL's
        seasonality-shift search to evaluate candidate shifts without
        committing their effect.
        """
        clone = IncrementalBandedLDLT(self.half_bandwidth, self.warmup_size)
        clone.size = self.size
        clone._incremental = self._incremental
        if self._dense_matrix is not None:
            clone._dense_matrix = self._dense_matrix.copy()
            clone._dense_rhs = self._dense_rhs.copy()
        else:
            clone._dense_matrix = None
            clone._dense_rhs = None
        clone._a_trail = self._a_trail.copy()
        clone._b_trail = self._b_trail.copy()
        clone._l_off = self._l_off.copy()
        clone._d_prev = self._d_prev.copy()
        clone._z_prev = self._z_prev.copy()
        clone._l_tail = self._l_tail.copy()
        clone._d_tail = self._d_tail.copy()
        clone._z_tail = self._z_tail.copy()
        return clone

    def extend(
        self,
        num_new: int,
        updates: Iterable[UpdateEntry],
        rhs_new: Sequence[float],
    ) -> None:
        """Append ``num_new`` variables and apply coefficient updates.

        Parameters
        ----------
        num_new:
            Number of appended variables (``1 <= num_new <= half_bandwidth``).
        updates:
            Iterable of ``(row, column, value)`` triples with absolute
            indices; ``value`` is *added* to ``A[row, column]`` (and to the
            symmetric entry).  Both indices must lie within the trailing
            ``half_bandwidth`` indices of the previous system or refer to the
            newly appended variables, and ``|row - column|`` must not exceed
            the half bandwidth.
        rhs_new:
            Right-hand-side values of the appended variables
            (length ``num_new``).  Existing right-hand-side entries cannot be
            modified.
        """
        w = self.half_bandwidth
        if not 1 <= num_new <= w:
            raise ValueError(f"num_new must be in [1, {w}], got {num_new}")
        rhs_new = np.asarray(rhs_new, dtype=float)
        if rhs_new.shape != (num_new,):
            raise ValueError(f"rhs_new must have length {num_new}")

        old_size = self.size
        new_size = old_size + num_new
        lowest_mutable = max(0, old_size - w)

        normalized: list[UpdateEntry] = []
        for row, column, value in updates:
            row = int(row)
            column = int(column)
            if row < column:
                row, column = column, row
            if row >= new_size:
                raise IndexError(f"update row {row} outside the extended system")
            if column < lowest_mutable:
                raise ValueError(
                    f"update touches finalized index {column} "
                    f"(allowed indices start at {lowest_mutable})"
                )
            if row - column > w:
                raise ValueError(
                    f"update ({row}, {column}) violates the half bandwidth {w}"
                )
            normalized.append((row, column, float(value)))

        if self._incremental:
            self._extend_incremental(num_new, normalized, rhs_new)
        else:
            self._extend_dense(num_new, normalized, rhs_new)
            if self.size >= self.warmup_size:
                self._switch_to_incremental()

    def tail_solution(self, count: int) -> np.ndarray:
        """Return the last ``count`` entries of the solution of ``A x = b``.

        ``count`` may not exceed the half bandwidth once the solver is in
        incremental mode (the OneShotSTL model needs only the last two
        entries: the newest trend and seasonal values).
        """
        if self.size == 0:
            raise ValueError("the system is empty")
        if count < 1:
            raise ValueError("count must be at least 1")
        if not self._incremental:
            lower, diag = ldlt_factor(self._dense_matrix)
            z = self._dense_rhs.copy()
            for k in range(self.size):
                z[k] -= np.dot(lower[k, :k], z[:k])
            x = z / diag
            for k in range(self.size - 2, -1, -1):
                x[k] -= np.dot(lower[k + 1 :, k], x[k + 1 :])
            if count > self.size:
                raise ValueError("count exceeds the system size")
            return x[-count:]

        w = self.half_bandwidth
        if count > w:
            raise ValueError(
                f"count ({count}) cannot exceed the half bandwidth ({w}) "
                "in incremental mode"
            )
        tail = np.zeros(w)
        for local in range(w - 1, -1, -1):
            value = self._z_tail[local] / self._d_tail[local]
            for other in range(local + 1, w):
                value -= self._l_tail[other, local] * tail[other]
            tail[local] = value
        return tail[w - count :]

    # --------------------------------------------------------- dense warm-up

    def _extend_dense(
        self, num_new: int, updates: list[UpdateEntry], rhs_new: np.ndarray
    ) -> None:
        old_size = self.size
        new_size = old_size + num_new
        matrix = np.zeros((new_size, new_size))
        matrix[:old_size, :old_size] = self._dense_matrix
        rhs = np.zeros(new_size)
        rhs[:old_size] = self._dense_rhs
        rhs[old_size:] = rhs_new
        for row, column, value in updates:
            matrix[row, column] += value
            if row != column:
                matrix[column, row] += value
        self._dense_matrix = matrix
        self._dense_rhs = rhs
        self.size = new_size

    def _switch_to_incremental(self) -> None:
        w = self.half_bandwidth
        n = self.size
        boundary = n - w
        lower, diag = ldlt_factor(self._dense_matrix)
        z = self._dense_rhs.copy()
        for k in range(n):
            z[k] -= np.dot(lower[k, :k], z[:k])

        self._a_trail = self._dense_matrix[boundary:, boundary:].copy()
        self._b_trail = self._dense_rhs[boundary:].copy()
        self._l_off = lower[boundary - w : boundary + w, boundary - w : boundary].copy()
        self._d_prev = diag[boundary - w : boundary].copy()
        self._z_prev = z[boundary - w : boundary].copy()
        self._l_tail = lower[boundary:, boundary:].copy()
        self._d_tail = diag[boundary:].copy()
        self._z_tail = z[boundary:].copy()

        self._dense_matrix = None
        self._dense_rhs = None
        self._incremental = True

    # ------------------------------------------------------ incremental mode

    def _extend_incremental(
        self, num_new: int, updates: list[UpdateEntry], rhs_new: np.ndarray
    ) -> None:
        w = self.half_bandwidth
        old_size = self.size
        new_size = old_size + num_new
        old_boundary = old_size - w
        block = w + num_new

        # Extended trailing block over absolute indices
        # [old_boundary, new_size): raw coefficients and right-hand side.
        a_block = np.zeros((block, block))
        a_block[:w, :w] = self._a_trail
        b_block = np.zeros(block)
        b_block[:w] = self._b_trail
        b_block[w:] = rhs_new
        for row, column, value in updates:
            local_row = row - old_boundary
            local_col = column - old_boundary
            a_block[local_row, local_col] += value
            if local_row != local_col:
                a_block[local_col, local_row] += value

        # Factorize the trailing block, reusing the finalized columns that
        # precede it (``L_off`` covers rows old_boundary - w .. old_boundary
        # + w - 1 and columns old_boundary - w .. old_boundary - 1).
        l_block = np.zeros((block, block))
        d_block = np.zeros(block)
        z_block = np.zeros(block)
        for local in range(block):
            absolute = old_boundary + local
            band_start = absolute - w

            pivot = a_block[local, local]
            rhs_value = b_block[local]
            # Contributions from finalized columns (absolute index < boundary).
            if band_start < old_boundary:
                for column in range(max(band_start, old_boundary - w), old_boundary):
                    off_row = absolute - (old_boundary - w)
                    off_col = column - (old_boundary - w)
                    l_value = self._l_off[off_row, off_col]
                    pivot -= (l_value ** 2) * self._d_prev[off_col]
                    rhs_value -= l_value * self._z_prev[off_col]
            # Contributions from trailing columns computed in this pass.
            for column_local in range(max(0, band_start - old_boundary), local):
                l_value = l_block[local, column_local]
                pivot -= (l_value ** 2) * d_block[column_local]
                rhs_value -= l_value * z_block[column_local]
            if pivot == 0.0 or not np.isfinite(pivot):
                raise ValueError(
                    f"zero or invalid pivot while appending at index {absolute}"
                )
            d_block[local] = pivot
            z_block[local] = rhs_value
            l_block[local, local] = 1.0

            for row_local in range(local + 1, min(local + w + 1, block)):
                row_absolute = old_boundary + row_local
                value = a_block[row_local, local]
                row_band_start = row_absolute - w
                if row_band_start < old_boundary:
                    for column in range(
                        max(row_band_start, old_boundary - w), old_boundary
                    ):
                        off_col = column - (old_boundary - w)
                        value -= (
                            self._l_off[row_absolute - (old_boundary - w), off_col]
                            * self._d_prev[off_col]
                            * self._l_off[absolute - (old_boundary - w), off_col]
                        )
                for column_local in range(
                    max(0, row_band_start - old_boundary), local
                ):
                    value -= (
                        l_block[row_local, column_local]
                        * d_block[column_local]
                        * l_block[local, column_local]
                    )
                l_block[row_local, local] = value / pivot

        # Advance the finalized boundary by ``num_new`` and rebuild the
        # O(w^2) state for the next append.
        new_boundary = new_size - w
        shift = num_new

        new_a_trail = a_block[shift:, shift:].copy()
        new_b_trail = b_block[shift:].copy()
        new_d_prev = np.concatenate([self._d_prev[shift:], d_block[:shift]])
        new_z_prev = np.concatenate([self._z_prev[shift:], z_block[:shift]])

        new_l_off = np.zeros((2 * w, w))
        for new_row in range(2 * w):
            row_absolute = new_boundary - w + new_row
            for new_col in range(w):
                col_absolute = new_boundary - w + new_col
                if row_absolute < col_absolute:
                    continue
                if row_absolute - col_absolute > w:
                    continue
                if col_absolute < old_boundary:
                    old_row = row_absolute - (old_boundary - w)
                    old_col = col_absolute - (old_boundary - w)
                    if 0 <= old_row < 2 * w:
                        new_l_off[new_row, new_col] = self._l_off[old_row, old_col]
                    # rows beyond the old L_off window lie outside the band
                    # of the old columns and are zero.
                else:
                    block_row = row_absolute - old_boundary
                    block_col = col_absolute - old_boundary
                    if block_row < block:
                        new_l_off[new_row, new_col] = l_block[block_row, block_col]

        self._a_trail = new_a_trail
        self._b_trail = new_b_trail
        self._d_prev = new_d_prev
        self._z_prev = new_z_prev
        self._l_off = new_l_off
        self._l_tail = l_block[shift:, shift:].copy()
        self._d_tail = d_block[shift:].copy()
        self._z_tail = z_block[shift:].copy()
        self.size = new_size
