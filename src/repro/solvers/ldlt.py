"""Symmetric Doolittle (LDL^T) factorization (paper Algorithm 3).

Two variants are provided:

* :func:`ldlt_factor` / :func:`ldlt_solve` operate on dense symmetric
  matrices.  They are used for small systems (the warm-up phase of the
  incremental solver and unit tests).
* :class:`BandedLDLT` operates on symmetric banded matrices stored in
  *lower band* form and runs in ``O(n * w^2)`` time, where ``w`` is the
  half bandwidth.  It backs the exact Algorithm-2 reference implementation
  of the modified JointSTL problem.

The factorization computed is ``A = L D L^T`` with ``L`` unit lower
triangular and ``D`` diagonal; for symmetric positive-definite input this
is the square-root-free Cholesky factorization.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ldlt_factor", "ldlt_solve", "solve_symmetric", "BandedLDLT"]


def ldlt_factor(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factor a dense symmetric matrix as ``A = L D L^T``.

    Parameters
    ----------
    matrix:
        Symmetric matrix of shape ``(n, n)``.  Only the lower triangle is
        read.

    Returns
    -------
    (L, d):
        ``L`` is unit lower triangular with shape ``(n, n)`` and ``d`` is the
        1-D array of diagonal entries of ``D``.

    Raises
    ------
    ValueError
        If the matrix is not square or a zero pivot is encountered (the
        matrix is singular or not positive definite).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    n = matrix.shape[0]
    lower = np.eye(n)
    diag = np.zeros(n)
    for k in range(n):
        pivot = matrix[k, k] - np.dot(lower[k, :k] ** 2, diag[:k])
        if pivot == 0.0 or not np.isfinite(pivot):
            raise ValueError(f"zero or invalid pivot at position {k}; matrix is singular")
        diag[k] = pivot
        for j in range(k + 1, n):
            value = matrix[j, k] - np.dot(lower[j, :k] * diag[:k], lower[k, :k])
            lower[j, k] = value / pivot
    return lower, diag


def ldlt_solve(lower: np.ndarray, diag: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L D L^T x = b`` given a factorization from :func:`ldlt_factor`."""
    lower = np.asarray(lower, dtype=float)
    diag = np.asarray(diag, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    n = diag.size
    if rhs.shape != (n,):
        raise ValueError(f"rhs must have shape ({n},), got {rhs.shape}")
    # Forward substitution: L z = b.
    z = rhs.copy()
    for k in range(n):
        z[k] -= np.dot(lower[k, :k], z[:k])
    # Diagonal solve and backward substitution: L^T x = D^{-1} z.
    x = z / diag
    for k in range(n - 2, -1, -1):
        x[k] -= np.dot(lower[k + 1 :, k], x[k + 1 :])
    return x


def solve_symmetric(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a dense symmetric system via LDL^T factorization."""
    lower, diag = ldlt_factor(matrix)
    return ldlt_solve(lower, diag, rhs)


class BandedLDLT:
    """LDL^T factorization of a symmetric banded matrix.

    The matrix is stored in *lower band* form: ``band[k, i] == A[i + k, i]``
    for ``0 <= k <= half_bandwidth`` (entries beyond the matrix are ignored).
    Factorization and the triangular solves all cost ``O(n * w^2)``.

    Parameters
    ----------
    band:
        Array of shape ``(half_bandwidth + 1, n)`` holding the lower band.
    """

    def __init__(self, band: np.ndarray):
        band = np.asarray(band, dtype=float)
        if band.ndim != 2:
            raise ValueError("band must be a 2-D array in lower-band storage")
        self.half_bandwidth = band.shape[0] - 1
        self.size = band.shape[1]
        self._lower_band, self._diag = self._factor(band)

    @staticmethod
    def from_dense(matrix: np.ndarray, half_bandwidth: int) -> "BandedLDLT":
        """Build the band storage from a dense symmetric matrix and factor it."""
        matrix = np.asarray(matrix, dtype=float)
        n = matrix.shape[0]
        band = np.zeros((half_bandwidth + 1, n))
        for k in range(min(half_bandwidth, n - 1) + 1):
            band[k, : n - k] = np.diagonal(matrix, -k)
        return BandedLDLT(band)

    def _factor(self, band: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = self.half_bandwidth
        n = self.size
        lower = np.zeros((w + 1, n))
        lower[0, :] = 1.0
        diag = np.zeros(n)
        for k in range(n):
            start = max(0, k - w)
            acc = band[0, k]
            for i in range(start, k):
                acc -= (lower[k - i, i] ** 2) * diag[i]
            if acc == 0.0 or not np.isfinite(acc):
                raise ValueError(f"zero or invalid pivot at position {k}")
            diag[k] = acc
            for j in range(k + 1, min(k + w + 1, n)):
                value = band[j - k, k]
                for i in range(max(0, j - w), k):
                    value -= lower[j - i, i] * diag[i] * lower[k - i, i]
                lower[j - k, k] = value / acc
        return lower, diag

    @property
    def diagonal(self) -> np.ndarray:
        """Diagonal entries of ``D`` (a copy)."""
        return self._diag.copy()

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the banded factorization."""
        rhs = np.asarray(rhs, dtype=float)
        n = self.size
        w = self.half_bandwidth
        if rhs.shape != (n,):
            raise ValueError(f"rhs must have shape ({n},), got {rhs.shape}")
        z = rhs.copy()
        for k in range(n):
            for i in range(max(0, k - w), k):
                z[k] -= self._lower_band[k - i, i] * z[i]
        x = z / self._diag
        for k in range(n - 1, -1, -1):
            for j in range(k + 1, min(k + w + 1, n)):
                x[k] -= self._lower_band[j - k, k] * x[j]
        return x
