"""Linear-algebra substrate for the OneShotSTL reproduction.

The paper's online algorithm is, at its core, an incremental symmetric
Doolittle (LDL^T) factorization of a growing banded linear system.  This
subpackage provides:

* :mod:`repro.solvers.ldlt` -- batch symmetric Doolittle factorization for
  dense and banded matrices (paper Algorithm 3), used by the batch JointSTL
  model, the Algorithm-2 reference implementation, and the warm-up phase of
  the incremental solver.
* :mod:`repro.solvers.incremental_ldlt` -- the O(1)-per-append incremental
  banded LDL^T solver (a generalization of the paper's OnlineDoolittle,
  Algorithm 4).
* :mod:`repro.solvers.batched_ldlt` -- the struct-of-arrays batched form of
  the same solver: ``n`` independent systems advanced in lockstep with one
  array operation per elimination step, bit-for-bit equal to running ``n``
  scalar solvers.
"""

from repro.solvers.ldlt import (
    BandedLDLT,
    ldlt_factor,
    ldlt_solve,
    solve_symmetric,
)
from repro.solvers.incremental_ldlt import IncrementalBandedLDLT
from repro.solvers.batched_ldlt import BatchedIncrementalLDLT

__all__ = [
    "BandedLDLT",
    "BatchedIncrementalLDLT",
    "IncrementalBandedLDLT",
    "ldlt_factor",
    "ldlt_solve",
    "solve_symmetric",
]
