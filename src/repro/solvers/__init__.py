"""Linear-algebra substrate for the OneShotSTL reproduction.

The paper's online algorithm is, at its core, an incremental symmetric
Doolittle (LDL^T) factorization of a growing banded linear system.  This
subpackage provides:

* :mod:`repro.solvers.ldlt` -- batch symmetric Doolittle factorization for
  dense and banded matrices (paper Algorithm 3), used by the batch JointSTL
  model, the Algorithm-2 reference implementation, and the warm-up phase of
  the incremental solver.
* :mod:`repro.solvers.incremental_ldlt` -- the O(1)-per-append incremental
  banded LDL^T solver (a generalization of the paper's OnlineDoolittle,
  Algorithm 4).
"""

from repro.solvers.ldlt import (
    BandedLDLT,
    ldlt_factor,
    ldlt_solve,
    solve_symmetric,
)
from repro.solvers.incremental_ldlt import IncrementalBandedLDLT

__all__ = [
    "BandedLDLT",
    "IncrementalBandedLDLT",
    "ldlt_factor",
    "ldlt_solve",
    "solve_symmetric",
]
