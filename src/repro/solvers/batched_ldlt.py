"""Struct-of-arrays batched incremental banded LDL^T solver.

:class:`BatchedIncrementalLDLT` advances ``n`` *independent* growing banded
systems -- one per monitored series -- with a handful of NumPy array
operations per append instead of a Python loop over ``n`` scalar
:class:`~repro.solvers.incremental_ldlt.IncrementalBandedLDLT` instances.
It is the linear-algebra substrate of the fleet kernel
(:class:`repro.core.fleet.FleetKernel`): a thousand-series fleet pays one
elimination sweep of small stacked blocks per point, so the per-point cost
of the whole fleet approaches the cost of a single series.

The state layout is columnar (struct of arrays) and *cell-major*: the
corrected trailing block of every system is stored as one ``(w, w, n)``
array -- entry ``(i, j)`` of all ``n`` systems is a contiguous vector --
and the corrected right-hand sides as ``(w, n)``.  Because each system is
independent, every scalar operation of the sequential solver becomes one
elementwise array operation over the trailing ``n`` axis, applied in
*exactly the same order* as the scalar kernel performs it; the cell-major
layout makes every one of those operations a contiguous vector operation
(series-major ``(n, w, w)`` storage would turn each cell access into a
strided gather, which costs ~3x in practice).  Elementwise IEEE-754 double
arithmetic is identical between Python floats and NumPy float64 (both are
round-to-nearest binary64, and no reductions or fused operations are
involved), so the batched solver reproduces the scalar solver's results
exactly -- the test suite asserts equality on every path.

Two deliberate differences from the scalar solver's *shape* (not values):

* all member systems must already be in incremental mode (the dense warm-up
  of a fresh stream is a few points long and stays on the scalar path;
  :meth:`pack` lifts scalar solvers into the batch once they are warm);
* coefficient updates are addressed in *local* trailing-block coordinates
  (``0 .. w + num_new``) rather than absolute indices, because member
  systems may have different absolute sizes (series go live at different
  times) while sharing the same local update pattern.  Local index ``i``
  corresponds to absolute index ``size - w + i`` of that member's system.

Internally the corrected state lives in a pair of capacity-managed
*ping-pong* buffers: every :meth:`extend` computes the new trailing state
into the inactive buffer and flips, which makes :meth:`rollback` an O(1)
flip back (the previous state is still sitting in the other buffer) and
removes all per-point allocation from the hot path (the extended-block
workspaces are reused call to call).  The spare columns of the buffers
double as append capacity: absorbing ``m`` late-joining members costs O(m)
amortized instead of one full copy per absorption.  :meth:`undo_state` /
:meth:`extract_pre_extend` expose the saved pre-extend state so a caller
can rebuild one member's pre-extend scalar state without rolling back the
rest of the fleet -- which is how the fleet kernel retries a single
series' seasonality-shift search while the other series keep their
committed update.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis import hotpath
from repro.solvers.incremental_ldlt import IncrementalBandedLDLT

__all__ = ["BatchedIncrementalLDLT"]

#: smallest buffer capacity (members) allocated for a non-empty batch
_MIN_CAPACITY = 8


class BatchedIncrementalLDLT:
    """``n`` independent incremental banded solvers advanced in lockstep.

    Instances are normally created with :meth:`pack` (from warm scalar
    solvers) or :meth:`empty` (zero members, grown with :meth:`append`).

    Parameters
    ----------
    half_bandwidth:
        Half bandwidth ``w`` shared by every member system.
    m_trail:
        Corrected trailing blocks, shape ``(n, w, w)``.
    bp_trail:
        Corrected trailing right-hand sides, shape ``(n, w)``.
    sizes:
        Absolute system size of each member, shape ``(n,)`` (bookkeeping
        only; the incremental representation itself is size independent).
    """

    def __init__(
        self,
        half_bandwidth: int,
        m_trail: np.ndarray,
        bp_trail: np.ndarray,
        sizes: np.ndarray,
    ):
        if half_bandwidth < 1:
            raise ValueError("half_bandwidth must be at least 1")
        w = int(half_bandwidth)
        m_trail = np.asarray(m_trail, dtype=float)
        bp_trail = np.asarray(bp_trail, dtype=float)
        sizes = np.array(sizes, dtype=np.int64)
        if m_trail.ndim != 3 or m_trail.shape[1:] != (w, w):
            raise ValueError(f"m_trail must have shape (n, {w}, {w})")
        n = m_trail.shape[0]
        if bp_trail.shape != (n, w):
            raise ValueError(f"bp_trail must have shape ({n}, {w})")
        if sizes.shape != (n,):
            raise ValueError(f"sizes must have shape ({n},)")
        self.half_bandwidth = w
        self._n = n
        #: ping-pong state buffers in cell-major layout -- ``(w, w, cap)``
        #: blocks and ``(w, cap)`` right-hand sides: index ``_cur`` holds
        #: the committed state, the other side holds the pre-extend state
        #: while an undo level is available (and is scratch otherwise).
        #: The spare trailing columns are append capacity.
        self._m_buffers: list[np.ndarray | None] = [
            np.ascontiguousarray(m_trail.transpose(1, 2, 0)),
            None,
        ]
        self._b_buffers: list[np.ndarray | None] = [
            np.ascontiguousarray(bp_trail.T),
            None,
        ]
        self._s_buffers: list[np.ndarray | None] = [sizes, None]
        self._cur = 0
        self._undo_ok = False
        #: reusable extended-block workspaces keyed by block size, and the
        #: reusable tail-solve workspaces (allocated lazily, grown with n)
        self._extend_scratch: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._tail_scratch: tuple[np.ndarray, np.ndarray] | None = None
        #: cache of the last validated update-pattern arrays (the fleet
        #: kernel passes the same module-constant pattern on every point)
        self._pattern_cache: tuple | None = None
        #: staged round-block state (begin_extend_block/extend_solve):
        #: validated pattern arrays, block width, and the back-substitution
        #: temporary shared by every staged solve
        self._block_pattern: tuple[int, np.ndarray, np.ndarray] | None = None
        self._block_tmp: np.ndarray | None = None
        #: staged augmented workspace: the extended block with the RHS as
        #: a trailing column, so every elimination sweep of extend_solve
        #: updates matrix and RHS in one array operation
        self._block_scratch: np.ndarray | None = None
        #: per-sweep row limits for extend_solve, from the staged
        #: pattern's structural profile (see begin_extend_block)
        self._block_limits: tuple[int, ...] = ()
        #: per-run pattern-cell views into the staged scratch
        #: (``(cell, mirror_or_None, value_position)`` per entry)
        self._block_cells: tuple = ()

    # ------------------------------------------------------- state plumbing

    def _m_state(self) -> np.ndarray:
        """Committed trailing blocks, cell-major ``(w, w, n)`` live view."""
        return self._m_buffers[self._cur][:, :, : self._n]

    def _b_state(self) -> np.ndarray:
        """Committed right-hand sides, cell-major ``(w, n)`` live view."""
        return self._b_buffers[self._cur][:, : self._n]

    @property
    def _m_trail(self) -> np.ndarray:
        """Committed trailing blocks as a series-major ``(n, w, w)`` view.

        A transposed (non-contiguous) view of the live state: reads and
        writes go straight through, which is what the cold scalar-interop
        paths use.  The hot paths work on the cell-major state directly.
        """
        return self._m_state().transpose(2, 0, 1)

    @property
    def _bp_trail(self) -> np.ndarray:
        """Committed right-hand sides as a series-major ``(n, w)`` view."""
        return self._b_state().T

    @property
    def _sizes(self) -> np.ndarray:
        """Committed member sizes, shape ``(n,)`` (live view)."""
        return self._s_buffers[self._cur][: self._n]

    def _other_side(self, capacity: int) -> int:
        """Index of the inactive buffer side, (re)allocated to ``capacity``."""
        other = 1 - self._cur
        buffer = self._m_buffers[other]
        if buffer is None or buffer.shape[2] < capacity:
            w = self.half_bandwidth
            self._m_buffers[other] = np.empty((w, w, capacity))
            self._b_buffers[other] = np.empty((w, capacity))
            self._s_buffers[other] = np.empty(capacity, dtype=np.int64)
        return other

    # ----------------------------------------------------------- construction

    @classmethod
    def empty(cls, half_bandwidth: int) -> "BatchedIncrementalLDLT":
        """A batch with zero members (grown later with :meth:`append`)."""
        w = int(half_bandwidth)
        return cls(
            w,
            np.zeros((0, w, w)),
            np.zeros((0, w)),
            np.zeros(0, dtype=np.int64),
        )

    @classmethod
    def pack(
        cls, solvers: Sequence[IncrementalBandedLDLT]
    ) -> "BatchedIncrementalLDLT":
        """Lift warm scalar solvers into one columnar batch.

        Every solver must already be in incremental mode and share the same
        half bandwidth; the scalar instances are left untouched.
        """
        if not solvers:
            raise ValueError("pack() needs at least one solver")
        w = solvers[0].half_bandwidth
        for index, solver in enumerate(solvers):
            if solver.half_bandwidth != w:
                raise ValueError(
                    f"solver {index} has half bandwidth {solver.half_bandwidth}, "
                    f"expected {w}"
                )
            if not solver.is_incremental:
                raise ValueError(
                    f"solver {index} is still in dense warm-up mode; only "
                    "incremental-mode solvers can be packed"
                )
        m_trail = np.array([solver._m_trail for solver in solvers], dtype=float)
        bp_trail = np.array([solver._bp_trail for solver in solvers], dtype=float)
        sizes = np.array([solver.size for solver in solvers], dtype=np.int64)
        return cls(w, m_trail, bp_trail, sizes)

    @property
    def n_series(self) -> int:
        """Number of member systems."""
        return self._n

    @property
    def sizes(self) -> np.ndarray:
        """Absolute system size of each member (copy)."""
        return self._sizes.copy()

    def copy(self) -> "BatchedIncrementalLDLT":
        """Independent deep copy (the pending rollback level is dropped)."""
        return BatchedIncrementalLDLT(
            self.half_bandwidth,
            self._m_trail.copy(),
            self._bp_trail.copy(),
            self._sizes.copy(),
        )

    # ------------------------------------------------ scalar interoperability

    def extract(self, index: int) -> IncrementalBandedLDLT:
        """Materialize member ``index`` as an equivalent scalar solver."""
        return self._make_scalar(
            self._m_state()[:, :, index],
            self._b_state()[:, index],
            int(self._sizes[index]),
        )

    def undo_state(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The saved pre-extend ``(m_trail, bp_trail, sizes)`` views.

        Series-major views (``(n, w, w)`` / ``(n, w)`` / ``(n,)``) of the
        inactive buffer side.  Requires an unconsumed undo level; the views
        must be treated as read-only (they will be overwritten by the next
        :meth:`extend`).
        """
        if not self._undo_ok:
            raise ValueError("no extend to read back (a single undo level is kept)")
        other = 1 - self._cur
        n = self._n
        return (
            self._m_buffers[other][:, :, :n].transpose(2, 0, 1),
            self._b_buffers[other][:, :n].T,
            self._s_buffers[other][:n],
        )

    def extract_pre_extend(self, index: int) -> IncrementalBandedLDLT:
        """Scalar solver equal to member ``index`` *before* the last extend.

        Requires an unconsumed undo level (i.e. :meth:`extend` was called
        and neither :meth:`rollback` nor another state rebinding happened
        since).  Used by the fleet kernel to rerun one series' point without
        disturbing the rest of the batch.
        """
        m_trail, bp_trail, sizes = self.undo_state()
        return self._make_scalar(m_trail[index], bp_trail[index], int(sizes[index]))

    def _make_scalar(self, m_trail, bp_trail, size: int) -> IncrementalBandedLDLT:
        """Scalar solver from one member's trailing state (arrays or lists)."""
        solver = IncrementalBandedLDLT(self.half_bandwidth)
        solver.size = size
        solver._incremental = True
        solver._dense_matrix = None
        solver._dense_rhs = None
        # ndarray.tolist() yields exact Python floats -- no value changes.
        solver._m_trail = (
            m_trail.tolist() if isinstance(m_trail, np.ndarray) else m_trail
        )
        solver._bp_trail = (
            bp_trail.tolist() if isinstance(bp_trail, np.ndarray) else bp_trail
        )
        return solver

    @hotpath
    def extract_many(self, columns: np.ndarray) -> list[IncrementalBandedLDLT]:
        """Materialize the members at ``columns`` as scalar solvers at once.

        Equivalent to ``[self.extract(c) for c in columns]`` but gathers
        each state array once (one fancy-indexed copy) and bulk-converts it
        with a single ``ndarray.tolist()`` instead of ``len(columns)``
        strided per-member conversions -- the hot piece of exporting a
        dirty cohort's state for an incremental checkpoint.
        """
        columns = np.asarray(columns, dtype=np.intp)
        m_lists = self._m_trail[columns].tolist()
        b_lists = self._bp_trail[columns].tolist()
        sizes = self._sizes[columns].tolist()
        return [
            self._make_scalar(m_lists[position], b_lists[position], sizes[position])
            for position in range(columns.size)
        ]

    def load(self, index: int, solver: IncrementalBandedLDLT) -> None:
        """Overwrite member ``index`` with a scalar solver's state.

        The pending undo level (if any) is left untouched, so the fleet
        kernel can keep reading other members' pre-extend state after
        scattering one member's retried update back in.
        """
        if not solver.is_incremental:
            raise ValueError("only incremental-mode solvers can be loaded")
        if solver.half_bandwidth != self.half_bandwidth:
            raise ValueError("half bandwidth mismatch")
        self._m_state()[:, :, index] = solver._m_trail
        self._b_state()[:, index] = solver._bp_trail
        self._sizes[index] = solver.size

    def unpack(self) -> list[IncrementalBandedLDLT]:
        """Materialize every member as an independent scalar solver."""
        return [self.extract(index) for index in range(self.n_series)]

    # ------------------------------------------------------ batch membership

    def append(self, other: "BatchedIncrementalLDLT") -> None:
        """Append the members of ``other`` (e.g. a freshly packed batch).

        Appending is amortized O(members of ``other``): the state buffers
        carry spare capacity (doubled whenever they fill up), so absorbing
        a trickle of late-joining series one at a time costs O(total)
        rather than one full-fleet copy per absorption.
        """
        if other.half_bandwidth != self.half_bandwidth:
            raise ValueError("half bandwidth mismatch")
        n, m = self._n, other._n
        buffer = self._m_buffers[self._cur]
        if buffer.shape[2] < n + m:
            capacity = max(2 * (n + m), _MIN_CAPACITY)
            w = self.half_bandwidth
            grown_m = np.empty((w, w, capacity))
            grown_b = np.empty((w, capacity))
            grown_s = np.empty(capacity, dtype=np.int64)
            grown_m[:, :, :n] = self._m_state()
            grown_b[:, :n] = self._b_state()
            grown_s[:n] = self._sizes
            self._m_buffers[self._cur] = grown_m
            self._b_buffers[self._cur] = grown_b
            self._s_buffers[self._cur] = grown_s
        self._m_buffers[self._cur][:, :, n : n + m] = other._m_state()
        self._b_buffers[self._cur][:, n : n + m] = other._b_state()
        self._s_buffers[self._cur][n : n + m] = other._sizes
        self._n = n + m
        self._undo_ok = False

    def select(self, columns: np.ndarray) -> "BatchedIncrementalLDLT":
        """Gathered copy of the members at ``columns`` (fancy indexing)."""
        return BatchedIncrementalLDLT(
            self.half_bandwidth,
            self._m_trail[columns],
            self._bp_trail[columns],
            self._sizes[columns],
        )

    def assign(self, columns: np.ndarray, other: "BatchedIncrementalLDLT") -> None:
        """Scatter the members of ``other`` back into ``columns``."""
        self._m_state()[:, :, columns] = other._m_state()
        self._b_state()[:, columns] = other._b_state()
        self._sizes[columns] = other._sizes
        self._undo_ok = False

    # -------------------------------------------------------------- advancing

    @hotpath
    def rollback(self) -> None:
        """Undo the most recent :meth:`extend` for the whole batch in O(1)."""
        if not self._undo_ok:
            raise ValueError("no extend to roll back (a single undo level is kept)")
        self._cur = 1 - self._cur
        self._undo_ok = False

    def _validated_pattern(
        self, num_new: int, rows, columns
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate the shared update pattern (cached by argument identity).

        The fleet kernel passes the same module-constant pattern arrays on
        every single point, so after the first call the (pure) validation
        is skipped entirely.
        """
        cache = self._pattern_cache
        if (
            cache is not None
            and cache[0] is rows
            and cache[1] is columns
            and cache[2] == num_new
        ):
            return cache[3], cache[4]
        w = self.half_bandwidth
        block = w + num_new
        checked_rows = np.asarray(rows, dtype=np.intp)
        checked_columns = np.asarray(columns, dtype=np.intp)
        if checked_rows.shape != checked_columns.shape or checked_rows.ndim != 1:
            raise ValueError("rows and columns must be equal-length 1-D arrays")
        if checked_rows.size and (
            checked_rows.min() < 0
            or checked_rows.max() >= block
            or checked_columns.min() < 0
            or checked_columns.max() >= block
            or np.abs(checked_rows - checked_columns).max() > w
        ):
            raise ValueError(
                "update positions must lie in the extended trailing block "
                f"[0, {block}) and respect the half bandwidth {w}"
            )
        self._pattern_cache = (rows, columns, num_new, checked_rows, checked_columns)
        return checked_rows, checked_columns

    @hotpath
    def extend(
        self,
        num_new: int,
        rows: np.ndarray,
        columns: np.ndarray,
        values: np.ndarray,
        rhs_new: np.ndarray,
    ) -> None:
        """Append ``num_new`` variables to every member system.

        Parameters
        ----------
        num_new:
            Number of appended variables per system
            (``1 <= num_new <= half_bandwidth``).
        rows, columns:
            Shared coefficient-update positions in *local* trailing-block
            coordinates ``[0, half_bandwidth + num_new)``, shape ``(k,)``.
            Every member receives the same update pattern (the fleet kernel
            guarantees this: the steady-state OneShotSTL point touches the
            same local positions for every series).  As in the scalar
            solver, each value is added at ``(row, column)`` *and* at the
            mirrored position.
        values:
            Per-member update values, shape ``(n, k)``.  Passing the
            transposed view of a C-contiguous ``(k, n)`` buffer (as the
            fleet kernel does) avoids an internal transposition copy.
        rhs_new:
            Per-member right-hand sides of the appended variables, shape
            ``(n, num_new)``; same transposition note as ``values``.
        """
        w = self.half_bandwidth
        if not 1 <= num_new <= w:
            raise ValueError(f"num_new must be in [1, {w}], got {num_new}")
        block = w + num_new
        n = self._n
        rows, columns = self._validated_pattern(num_new, rows, columns)
        values = np.asarray(values, dtype=float)
        rhs_new = np.asarray(rhs_new, dtype=float)
        if values.shape != (n, rows.size):
            raise ValueError(f"values must have shape ({n}, {rows.size})")
        if rhs_new.shape != (n, num_new):
            raise ValueError(f"rhs_new must have shape ({n}, {num_new})")
        # Cell-major working copies (no-ops when the caller passed
        # transposed views of contiguous buffers).
        values_t = np.ascontiguousarray(values.T)
        rhs_t = np.ascontiguousarray(rhs_new.T)

        # Extended corrected block over local indices [0, block): the old
        # trailing block in the top-left corner, zeros elsewhere.  The
        # workspace is persistent (reused call to call) so the hot path
        # allocates nothing.
        scratch = self._extend_scratch.get(block)
        if scratch is None or scratch[0].shape[2] < n:
            scratch = (np.empty((block, block, n)), np.empty((block, n)))
            self._extend_scratch[block] = scratch
        matrix = scratch[0][:, :, :n]
        rhs = scratch[1][:, :n]
        matrix[:w, w:] = 0.0
        matrix[w:, :] = 0.0
        matrix[:w, :w] = self._m_state()
        rhs[:w] = self._b_state()
        rhs[w:] = rhs_t

        # Apply the shared update pattern entry by entry, in caller order --
        # cells hit by several entries must accumulate in the same order as
        # the scalar solver's sequential `+=` for exact reproducibility.
        for position in range(rows.size):
            row, column = rows[position], columns[position]
            matrix[row, column] += values_t[position]
            if row != column:
                matrix[column, row] += values_t[position]

        # Eliminate the num_new oldest variables (they are finalized now),
        # folding their Schur-complement correction into the new trailing
        # block.  Same sweep order as the scalar kernel; the scalar kernel's
        # `if factor != 0.0` skip is a pure no-op for finite operands
        # (x - 0.0 * y == x up to the sign of a zero), so the unconditional
        # vectorized form computes the same values.
        for k in range(num_new):
            pivot = matrix[k, k]
            if not math.isfinite(pivot.sum()) or (pivot == 0.0).any():
                bad = np.flatnonzero(~np.isfinite(pivot) | (pivot == 0.0))
                if bad.size:
                    raise ValueError(
                        f"zero or invalid pivot while finalizing local index "
                        f"{k} of member systems {bad.tolist()}"
                    )
            factor = matrix[k + 1 :, k] / pivot
            matrix[k + 1 :, k + 1 :] -= factor[:, None, :] * matrix[k, None, k + 1 :]
            rhs[k + 1 :] -= factor * rhs[k]

        # Commit the new trailing state into the inactive buffer and flip:
        # the pre-extend state stays intact on the other side, which is the
        # whole of rollback().
        sizes = self._sizes
        other = self._other_side(self._m_buffers[self._cur].shape[2])
        self._m_buffers[other][:, :, :n] = matrix[num_new:, num_new:]
        self._b_buffers[other][:, :n] = rhs[num_new:]
        np.add(sizes, num_new, out=self._s_buffers[other][:n])
        self._cur = other
        self._undo_ok = True

    def begin_extend_block(
        self, num_new: int, rows: np.ndarray, columns: np.ndarray
    ) -> None:
        """Stage a run of :meth:`extend_solve` calls sharing one pattern.

        Validates the shared update pattern once and pre-sizes the staged
        augmented workspace, so each :meth:`extend_solve` of the run
        skips all validation, shape checking and allocation.  The staged
        pattern stays valid until the next :meth:`begin_extend_block`;
        membership changes (append/assign) between runs are fine because
        every call re-reads ``self._n``.
        """
        w = self.half_bandwidth
        if not 1 <= num_new <= w:
            raise ValueError(f"num_new must be in [1, {w}], got {num_new}")
        checked_rows, checked_columns = self._validated_pattern(
            num_new, rows, columns
        )
        block = w + num_new
        n = self._n
        tmp = self._block_tmp
        if tmp is None or tmp.shape[0] < n:
            self._block_tmp = np.empty(n)
        scratch = self._block_scratch
        if scratch is None or scratch.shape[0] != block or scratch.shape[2] < n:
            self._block_scratch = np.empty((block, block + 1, n))
        # Pattern-cell views are resolved once per run: each extend_solve
        # then applies the shared update through the views directly,
        # skipping numpy's index parsing on every one of the (mirrored)
        # pattern entries.  Views into the freshly sized scratch stay
        # valid for the whole run; same-cell accumulation order is the
        # tuple order, which is caller order.
        scratch = self._block_scratch
        cells = []
        for position in range(checked_rows.size):
            row, column = checked_rows[position], checked_columns[position]
            mirror = scratch[column, row, :n] if row != column else None
            cells.append((scratch[row, column, :n], mirror, position))
        self._block_cells = tuple(cells)
        # Structural profile of the appended rows: appended row ``w + i``
        # of the staged block holds exact ``+0.0`` left of its first
        # pattern entry (the setup zero-fill writes it and nothing else
        # does), so an elimination sweep ``k < first_col[i]`` would give
        # it a factor of ``+-0.0`` and subtract ``+-0.0 * pivot_row``
        # from cells that are themselves ``+0.0`` or untouched nonzeros
        # -- bitwise a no-op in either case.  Each sweep can therefore
        # stop at a precomputed row limit.  The skipped rows must form a
        # suffix of the block, so the limits apply only while
        # ``first_col`` is non-decreasing; otherwise every sweep runs
        # the full range (same values, more work).
        first_col = [block] * num_new
        for row, column in zip(checked_rows.tolist(), checked_columns.tolist()):
            if row >= w and column < first_col[row - w]:
                first_col[row - w] = column
            if column >= w and row < first_col[column - w]:
                first_col[column - w] = row
        if all(a <= b for a, b in zip(first_col, first_col[1:])):
            self._block_limits = tuple(
                max(k + 1, w + sum(1 for c in first_col if c <= k))
                for k in range(block - 1)
            )
        else:
            self._block_limits = (block,) * (block - 1)
        self._block_pattern = (num_new, checked_rows, checked_columns)

    @hotpath
    def extend_solve(
        self,
        values_t: np.ndarray,
        rhs_t: np.ndarray,
        out_trend: np.ndarray,
        out_seasonal: np.ndarray,
    ) -> None:
        """One staged :meth:`extend` fused with a two-entry tail solve.

        Requires a preceding :meth:`begin_extend_block`.  ``values_t`` is
        the cell-major ``(k, n)`` pattern-value buffer and ``rhs_t`` the
        cell-major ``(num_new, n)`` right-hand sides; the last two solution
        entries land in ``out_seasonal`` (local row ``w - 1``) and
        ``out_trend`` (row ``w - 2``), both shape ``(n,)``.

        Values are identical to ``extend(...)`` followed by
        ``tail_solution(2)`` -- the tail sweep continues the extend's
        elimination in the same scratch (the committed trailing state *is*
        the partially eliminated block), the dead back-substitution rows
        below ``w - 2`` are skipped, and the pivot guards are dropped: a
        zero/invalid pivot propagates non-finite values into the outputs
        instead of raising, which the caller screens post hoc (the fleet
        kernel rolls the round back and replays it on the guarded per-round
        path to reproduce the exact scalar error).  The committed ping-pong
        state and the single undo level behave exactly as after
        :meth:`extend`.
        """
        w = self.half_bandwidth
        num_new = self._block_pattern[0]
        block = w + num_new
        n = self._n
        # The staged workspace is *augmented*: the right-hand side rides as
        # column ``block`` of the matrix, so each elimination sweep updates
        # matrix and RHS in one array operation (the per-element multiply
        # and subtract are the unfused ones of extend(), so values match
        # bit for bit).  The sweep temporaries are deliberately allocated
        # fresh: repeated same-size allocations reuse hot addresses, which
        # beats per-solver persistent buffers that multiply the working
        # set by the iteration count.
        aug = self._block_scratch[:, :, :n]
        aug[:w, w:block] = 0.0
        aug[w:, :block] = 0.0
        aug[:w, :w] = self._m_state()
        aug[:w, block] = self._b_state()
        aug[w:, block] = rhs_t
        # Same sequential per-entry accumulation as extend() -- cells hit
        # by several pattern entries fold in caller order -- through the
        # cell views staged by begin_extend_block.
        for view, mirror, position in self._block_cells:
            value = values_t[position]
            np.add(view, value, out=view)
            if mirror is not None:
                np.add(mirror, value, out=mirror)
        # Sweeps stop at the staged per-sweep row limit: appended rows
        # that have not coupled in yet carry an exact ``+-0.0`` factor,
        # and subtracting ``+-0.0 * pivot_row`` is bitwise a no-op (see
        # begin_extend_block).
        limits = self._block_limits
        for k in range(num_new):
            limit = limits[k]
            factor = aug[k + 1 : limit, k] / aug[k, k]
            aug[k + 1 : limit, k + 1 :] -= factor[:, None, :] * aug[k, None, k + 1 :]
        # Commit BEFORE the tail continuation: the trailing block is final
        # here, and the tail sweep below must not observe its own updates
        # in the committed state (rollback/extract_pre_extend still see the
        # pre-extend side).
        sizes = self._sizes
        other = self._other_side(self._m_buffers[self._cur].shape[2])
        self._m_buffers[other][:, :, :n] = aug[num_new:, num_new:block]
        self._b_buffers[other][:, :n] = aug[num_new:, block]
        np.add(sizes, num_new, out=self._s_buffers[other][:n])
        self._cur = other
        self._undo_ok = True
        # Fused tail: continuing the elimination over the trailing block in
        # the same scratch performs exactly tail_solution's fresh sweep
        # (its final pivot iteration touches no rows and is skipped).
        for k in range(num_new, block - 1):
            limit = limits[k]
            factor = aug[k + 1 : limit, k] / aug[k, k]
            aug[k + 1 : limit, k + 1 :] -= factor[:, None, :] * aug[k, None, k + 1 :]
        # Back substitution of the last two rows only (the rest is dead),
        # with tail_solution's accumulation order.
        tmp = self._block_tmp[:n]
        np.divide(aug[block - 1, block], aug[block - 1, block - 1], out=out_seasonal)
        np.multiply(aug[block - 2, block - 1], out_seasonal, out=tmp)
        np.subtract(aug[block - 2, block], tmp, out=tmp)
        np.divide(tmp, aug[block - 2, block - 2], out=out_trend)

    @hotpath
    def tail_solution(self, count: int) -> np.ndarray:
        """Last ``count`` solution entries of every member, shape ``(n, count)``.

        ``count`` may not exceed the half bandwidth (same contract as the
        scalar solver in incremental mode).
        """
        w = self.half_bandwidth
        if count < 1:
            raise ValueError("count must be at least 1")
        if count > w:
            raise ValueError(
                f"count ({count}) cannot exceed the half bandwidth ({w})"
            )
        n = self._n
        scratch = self._tail_scratch
        if scratch is None or scratch[0].shape[2] < n:
            scratch = (np.empty((w, w, n)), np.empty((w, n)))
            self._tail_scratch = scratch
        matrix = scratch[0][:, :, :n]
        rhs = scratch[1][:, :n]
        matrix[:] = self._m_state()
        rhs[:] = self._b_state()
        # Forward elimination, mirroring the scalar kernel sweep for sweep.
        for k in range(w):
            pivot = matrix[k, k]
            if not math.isfinite(pivot.sum()) or (pivot == 0.0).any():
                bad = np.flatnonzero(~np.isfinite(pivot) | (pivot == 0.0))
                if bad.size:
                    raise ValueError(
                        f"singular trailing system at pivot {k} of member "
                        f"systems {bad.tolist()}"
                    )
            factor = matrix[k + 1 :, k] / pivot
            matrix[k + 1 :, k + 1 :] -= factor[:, None, :] * matrix[k, None, k + 1 :]
            rhs[k + 1 :] -= factor * rhs[k]
        # Back substitution with the scalar kernel's accumulation order.
        # The solution array is freshly allocated -- it is returned to the
        # caller, which may hold on to views of it across later calls.
        solution = np.empty((w, n))
        for i in range(w - 1, -1, -1):
            accumulator = rhs[i]
            for j in range(i + 1, w):
                accumulator = accumulator - matrix[i, j] * solution[j]
            solution[i] = accumulator / matrix[i, i]
        return solution[w - count :].T
