"""Struct-of-arrays batched incremental banded LDL^T solver.

:class:`BatchedIncrementalLDLT` advances ``n`` *independent* growing banded
systems -- one per monitored series -- with a handful of NumPy array
operations per append instead of a Python loop over ``n`` scalar
:class:`~repro.solvers.incremental_ldlt.IncrementalBandedLDLT` instances.
It is the linear-algebra substrate of the fleet kernel
(:class:`repro.core.fleet.FleetKernel`): a thousand-series fleet pays one
elimination sweep of ``(n, w, w)``-shaped arrays per point, so the per-point
cost of the whole fleet approaches the cost of a single series.

The state layout is columnar (struct of arrays): the corrected trailing
block of every system is one contiguous ``(n, w, w)`` array, the corrected
right-hand sides one ``(n, w)`` array.  Because each system is independent,
every scalar operation of the sequential solver becomes one elementwise
array operation over the leading ``n`` axis, applied in *exactly the same
order* as the scalar kernel performs it.  Elementwise IEEE-754 double
arithmetic is identical between Python floats and NumPy float64 (both are
round-to-nearest binary64, and no reductions or fused operations are
involved), so the batched solver reproduces the scalar solver's results
exactly -- the test suite asserts equality on every path.

Two deliberate differences from the scalar solver's *shape* (not values):

* all member systems must already be in incremental mode (the dense warm-up
  of a fresh stream is a few points long and stays on the scalar path;
  :meth:`pack` lifts scalar solvers into the batch once they are warm);
* coefficient updates are addressed in *local* trailing-block coordinates
  (``0 .. w + num_new``) rather than absolute indices, because member
  systems may have different absolute sizes (series go live at different
  times) while sharing the same local update pattern.  Local index ``i``
  corresponds to absolute index ``size - w + i`` of that member's system.

:meth:`rollback` undoes the most recent :meth:`extend` for the whole batch
in O(1) (the extend path rebinds rather than mutates the arrays), and
:meth:`undo_state` exposes the saved pre-extend arrays so a caller can
rebuild one member's pre-extend scalar state without rolling back the rest
of the fleet -- which is how the fleet kernel retries a single series'
seasonality-shift search while the other series keep their committed
update.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.solvers.incremental_ldlt import IncrementalBandedLDLT

__all__ = ["BatchedIncrementalLDLT"]


class BatchedIncrementalLDLT:
    """``n`` independent incremental banded solvers advanced in lockstep.

    Instances are normally created with :meth:`pack` (from warm scalar
    solvers) or :meth:`empty` (zero members, grown with :meth:`append`).

    Parameters
    ----------
    half_bandwidth:
        Half bandwidth ``w`` shared by every member system.
    m_trail:
        Corrected trailing blocks, shape ``(n, w, w)``.
    bp_trail:
        Corrected trailing right-hand sides, shape ``(n, w)``.
    sizes:
        Absolute system size of each member, shape ``(n,)`` (bookkeeping
        only; the incremental representation itself is size independent).
    """

    def __init__(
        self,
        half_bandwidth: int,
        m_trail: np.ndarray,
        bp_trail: np.ndarray,
        sizes: np.ndarray,
    ):
        if half_bandwidth < 1:
            raise ValueError("half_bandwidth must be at least 1")
        w = int(half_bandwidth)
        m_trail = np.asarray(m_trail, dtype=float)
        bp_trail = np.asarray(bp_trail, dtype=float)
        sizes = np.asarray(sizes, dtype=np.int64)
        if m_trail.ndim != 3 or m_trail.shape[1:] != (w, w):
            raise ValueError(f"m_trail must have shape (n, {w}, {w})")
        n = m_trail.shape[0]
        if bp_trail.shape != (n, w):
            raise ValueError(f"bp_trail must have shape ({n}, {w})")
        if sizes.shape != (n,):
            raise ValueError(f"sizes must have shape ({n},)")
        self.half_bandwidth = w
        self._m_trail = m_trail
        self._bp_trail = bp_trail
        self._sizes = sizes
        #: saved pre-extend state references for :meth:`rollback`
        self._undo: tuple | None = None

    # ----------------------------------------------------------- construction

    @classmethod
    def empty(cls, half_bandwidth: int) -> "BatchedIncrementalLDLT":
        """A batch with zero members (grown later with :meth:`append`)."""
        w = int(half_bandwidth)
        return cls(
            w,
            np.zeros((0, w, w)),
            np.zeros((0, w)),
            np.zeros(0, dtype=np.int64),
        )

    @classmethod
    def pack(
        cls, solvers: Sequence[IncrementalBandedLDLT]
    ) -> "BatchedIncrementalLDLT":
        """Lift warm scalar solvers into one columnar batch.

        Every solver must already be in incremental mode and share the same
        half bandwidth; the scalar instances are left untouched.
        """
        if not solvers:
            raise ValueError("pack() needs at least one solver")
        w = solvers[0].half_bandwidth
        for index, solver in enumerate(solvers):
            if solver.half_bandwidth != w:
                raise ValueError(
                    f"solver {index} has half bandwidth {solver.half_bandwidth}, "
                    f"expected {w}"
                )
            if not solver.is_incremental:
                raise ValueError(
                    f"solver {index} is still in dense warm-up mode; only "
                    "incremental-mode solvers can be packed"
                )
        m_trail = np.array([solver._m_trail for solver in solvers], dtype=float)
        bp_trail = np.array([solver._bp_trail for solver in solvers], dtype=float)
        sizes = np.array([solver.size for solver in solvers], dtype=np.int64)
        return cls(w, m_trail, bp_trail, sizes)

    @property
    def n_series(self) -> int:
        """Number of member systems."""
        return self._m_trail.shape[0]

    @property
    def sizes(self) -> np.ndarray:
        """Absolute system size of each member (copy)."""
        return self._sizes.copy()

    def copy(self) -> "BatchedIncrementalLDLT":
        """Independent deep copy (the pending rollback level is dropped)."""
        return BatchedIncrementalLDLT(
            self.half_bandwidth,
            self._m_trail.copy(),
            self._bp_trail.copy(),
            self._sizes.copy(),
        )

    # ------------------------------------------------ scalar interoperability

    def extract(self, index: int) -> IncrementalBandedLDLT:
        """Materialize member ``index`` as an equivalent scalar solver."""
        return self._make_scalar(
            self._m_trail[index], self._bp_trail[index], int(self._sizes[index])
        )

    def extract_pre_extend(self, index: int) -> IncrementalBandedLDLT:
        """Scalar solver equal to member ``index`` *before* the last extend.

        Requires an unconsumed undo level (i.e. :meth:`extend` was called
        and neither :meth:`rollback` nor another state rebinding happened
        since).  Used by the fleet kernel to rerun one series' point without
        disturbing the rest of the batch.
        """
        if self._undo is None:
            raise ValueError("no extend to read back (a single undo level is kept)")
        m_trail, bp_trail, sizes = self._undo
        return self._make_scalar(m_trail[index], bp_trail[index], int(sizes[index]))

    def _make_scalar(
        self, m_trail: np.ndarray, bp_trail: np.ndarray, size: int
    ) -> IncrementalBandedLDLT:
        solver = IncrementalBandedLDLT(self.half_bandwidth)
        solver.size = size
        solver._incremental = True
        solver._dense_matrix = None
        solver._dense_rhs = None
        # ndarray.tolist() yields exact Python floats -- no value changes.
        solver._m_trail = m_trail.tolist()
        solver._bp_trail = bp_trail.tolist()
        return solver

    def load(self, index: int, solver: IncrementalBandedLDLT) -> None:
        """Overwrite member ``index`` with a scalar solver's state."""
        if not solver.is_incremental:
            raise ValueError("only incremental-mode solvers can be loaded")
        if solver.half_bandwidth != self.half_bandwidth:
            raise ValueError("half bandwidth mismatch")
        self._m_trail[index] = solver._m_trail
        self._bp_trail[index] = solver._bp_trail
        self._sizes[index] = solver.size

    def unpack(self) -> list[IncrementalBandedLDLT]:
        """Materialize every member as an independent scalar solver."""
        return [self.extract(index) for index in range(self.n_series)]

    # ------------------------------------------------------ batch membership

    def append(self, other: "BatchedIncrementalLDLT") -> None:
        """Append the members of ``other`` (e.g. a freshly packed batch)."""
        if other.half_bandwidth != self.half_bandwidth:
            raise ValueError("half bandwidth mismatch")
        self._m_trail = np.concatenate([self._m_trail, other._m_trail])
        self._bp_trail = np.concatenate([self._bp_trail, other._bp_trail])
        self._sizes = np.concatenate([self._sizes, other._sizes])
        self._undo = None

    def select(self, columns: np.ndarray) -> "BatchedIncrementalLDLT":
        """Gathered copy of the members at ``columns`` (fancy indexing)."""
        return BatchedIncrementalLDLT(
            self.half_bandwidth,
            self._m_trail[columns],
            self._bp_trail[columns],
            self._sizes[columns],
        )

    def assign(self, columns: np.ndarray, other: "BatchedIncrementalLDLT") -> None:
        """Scatter the members of ``other`` back into ``columns``."""
        self._m_trail[columns] = other._m_trail
        self._bp_trail[columns] = other._bp_trail
        self._sizes[columns] = other._sizes
        self._undo = None

    # -------------------------------------------------------------- advancing

    def rollback(self) -> None:
        """Undo the most recent :meth:`extend` for the whole batch in O(1)."""
        if self._undo is None:
            raise ValueError("no extend to roll back (a single undo level is kept)")
        self._m_trail, self._bp_trail, self._sizes = self._undo
        self._undo = None

    def extend(
        self,
        num_new: int,
        rows: np.ndarray,
        columns: np.ndarray,
        values: np.ndarray,
        rhs_new: np.ndarray,
    ) -> None:
        """Append ``num_new`` variables to every member system.

        Parameters
        ----------
        num_new:
            Number of appended variables per system
            (``1 <= num_new <= half_bandwidth``).
        rows, columns:
            Shared coefficient-update positions in *local* trailing-block
            coordinates ``[0, half_bandwidth + num_new)``, shape ``(k,)``.
            Every member receives the same update pattern (the fleet kernel
            guarantees this: the steady-state OneShotSTL point touches the
            same local positions for every series).  As in the scalar
            solver, each value is added at ``(row, column)`` *and* at the
            mirrored position.
        values:
            Per-member update values, shape ``(n, k)``.
        rhs_new:
            Per-member right-hand sides of the appended variables, shape
            ``(n, num_new)``.
        """
        w = self.half_bandwidth
        if not 1 <= num_new <= w:
            raise ValueError(f"num_new must be in [1, {w}], got {num_new}")
        block = w + num_new
        n = self.n_series
        rows = np.asarray(rows, dtype=np.intp)
        columns = np.asarray(columns, dtype=np.intp)
        values = np.asarray(values, dtype=float)
        rhs_new = np.asarray(rhs_new, dtype=float)
        if rows.shape != columns.shape or rows.ndim != 1:
            raise ValueError("rows and columns must be equal-length 1-D arrays")
        if values.shape != (n, rows.size):
            raise ValueError(f"values must have shape ({n}, {rows.size})")
        if rhs_new.shape != (n, num_new):
            raise ValueError(f"rhs_new must have shape ({n}, {num_new})")
        if rows.size and (
            rows.min() < 0
            or rows.max() >= block
            or columns.min() < 0
            or columns.max() >= block
            or np.abs(rows - columns).max() > w
        ):
            raise ValueError(
                "update positions must lie in the extended trailing block "
                f"[0, {block}) and respect the half bandwidth {w}"
            )

        # Extended corrected block over local indices [0, block): the old
        # trailing block in the top-left corner, zeros elsewhere.  Built
        # fresh (rebind, never mutate) so rollback is a reference swap.
        matrix = np.zeros((n, block, block))
        matrix[:, :w, :w] = self._m_trail
        rhs = np.empty((n, block))
        rhs[:, :w] = self._bp_trail
        rhs[:, w:] = rhs_new

        # Apply the shared update pattern entry by entry, in caller order --
        # cells hit by several entries must accumulate in the same order as
        # the scalar solver's sequential `+=` for exact reproducibility.
        for position in range(rows.size):
            row, column = rows[position], columns[position]
            matrix[:, row, column] += values[:, position]
            if row != column:
                matrix[:, column, row] += values[:, position]

        # Eliminate the num_new oldest variables (they are finalized now),
        # folding their Schur-complement correction into the new trailing
        # block.  Same sweep order as the scalar kernel; the scalar kernel's
        # `if factor != 0.0` skip is a pure no-op for finite operands
        # (x - 0.0 * y == x up to the sign of a zero), so the unconditional
        # vectorized form computes the same values.
        for k in range(num_new):
            pivot = matrix[:, k, k]
            if not np.all(np.isfinite(pivot)) or np.any(pivot == 0.0):
                bad = np.flatnonzero(~np.isfinite(pivot) | (pivot == 0.0))
                raise ValueError(
                    f"zero or invalid pivot while finalizing local index {k} "
                    f"of member systems {bad.tolist()}"
                )
            factor = matrix[:, k + 1 :, k] / pivot[:, None]
            matrix[:, k + 1 :, k + 1 :] -= (
                factor[:, :, None] * matrix[:, None, k, k + 1 :]
            )
            rhs[:, k + 1 :] -= factor * rhs[:, None, k]

        self._undo = (self._m_trail, self._bp_trail, self._sizes)
        self._m_trail = np.ascontiguousarray(matrix[:, num_new:, num_new:])
        self._bp_trail = np.ascontiguousarray(rhs[:, num_new:])
        self._sizes = self._sizes + num_new

    def tail_solution(self, count: int) -> np.ndarray:
        """Last ``count`` solution entries of every member, shape ``(n, count)``.

        ``count`` may not exceed the half bandwidth (same contract as the
        scalar solver in incremental mode).
        """
        w = self.half_bandwidth
        if count < 1:
            raise ValueError("count must be at least 1")
        if count > w:
            raise ValueError(
                f"count ({count}) cannot exceed the half bandwidth ({w})"
            )
        n = self.n_series
        matrix = self._m_trail.copy()
        rhs = self._bp_trail.copy()
        # Forward elimination, mirroring the scalar kernel sweep for sweep.
        for k in range(w):
            pivot = matrix[:, k, k]
            if not np.all(np.isfinite(pivot)) or np.any(pivot == 0.0):
                bad = np.flatnonzero(~np.isfinite(pivot) | (pivot == 0.0))
                raise ValueError(
                    f"singular trailing system at pivot {k} of member "
                    f"systems {bad.tolist()}"
                )
            factor = matrix[:, k + 1 :, k] / pivot[:, None]
            matrix[:, k + 1 :, k + 1 :] -= (
                factor[:, :, None] * matrix[:, None, k, k + 1 :]
            )
            rhs[:, k + 1 :] -= factor * rhs[:, None, k]
        # Back substitution with the scalar kernel's accumulation order.
        solution = np.empty((n, w))
        for i in range(w - 1, -1, -1):
            accumulator = rhs[:, i]
            for j in range(i + 1, w):
                accumulator = accumulator - matrix[:, i, j] * solution[:, j]
            solution[:, i] = accumulator / matrix[:, i, i]
        return solution[:, w - count :]
